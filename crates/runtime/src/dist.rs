//! The distributed task DAG: [`LuDag::build_dist`] re-expresses the 2D
//! block-cyclic CALU / `PDGETRF` step loop as a per-rank task graph with
//! **communication as first-class tasks**.
//!
//! Where the shared-memory DAG ([`LuDag::build`]) has four task kinds, the
//! distributed DAG partitions every step's work over a `Pr × Pc` process
//! grid (tasks carry their owning rank in column-major grid order) and
//! realizes every cross-rank data flow as an explicit send/recv task pair
//! — the TSLU butterfly legs, the swap-list and packed-panel broadcasts
//! along process rows, the `W`/`U₁₂` broadcasts down process columns, and
//! the pivot-row exchanges of the swap sweep (see [`DistKind`]). The edge
//! set mirrors the data flow of the SPMD sweep in `calu-core::dist`
//! exactly, so any topological execution reproduces its factors bitwise;
//! the panel throttle makes lookahead depth a real parameter of the
//! *distributed* algorithm for the first time.
//!
//! Three consumers:
//!
//! * the real-data runner in `calu-core::dist_rt` drives each rank's
//!   owned `TileMatrix` tiles through this DAG under either executor;
//! * [`DistCostModel`] prices every task from a [`MachineConfig`]'s
//!   α-β-γ terms (compute for kernel tasks, `α + w·β` per message leg for
//!   comm tasks), giving [`LuDag::critical_path`] a distributed cost;
//! * [`simulate_dist_schedule`] list-schedules the DAG with one processor
//!   per rank, producing per-rank [`RankTrace`] timelines (compute /
//!   send / idle) for `render_gantt` and synthesized [`RankStats`] — the
//!   modeled counterpart of a `run_sim` report.

use std::collections::{BTreeMap, HashMap};

use calu_netsim::collectives::{ceil_log2, prev_pow2};
use calu_netsim::grid::numroc;
use calu_netsim::machine::{flops_gemm, flops_ger, flops_getf2, flops_trsm_left, flops_trsm_right};
use calu_netsim::{Link, MachineConfig, RankStats, RankTrace, SegKind, TraceEvent};
use calu_obs::CommTerm;

use crate::dag::{DistKind, DistTask, LuDag, LuShape, Task, TaskId};

/// Which distributed panel algorithm a DAG models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistPanelAlg {
    /// CALU's TSLU: local elections plus a butterfly all-reduce of
    /// candidate sets, then a redundant second pass.
    Tslu,
    /// ScaLAPACK `PDGETF2`: the per-column scan / combine / exchange /
    /// rank-1 picket fence, modeled as one serialized task per panel.
    Getf2,
}

/// Role of one process row in one leg of the TSLU butterfly all-reduce —
/// the exact algebra of `calu_netsim::Group::allreduce`, shared between
/// the DAG builder and the real-data runner so their combination trees
/// cannot drift apart. `p2 = prev_pow2(p)`, `extra = p - p2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LegRole {
    /// Pairwise exchange with `partner`, then the redundant combine
    /// `op(lo, hi)` ordered by member index (both sides compute it).
    Exchange {
        /// Butterfly partner (`r ^ mask`).
        partner: usize,
    },
    /// Fold-in donor (`r ≥ p2`): sends its accumulator to `partner` and
    /// goes quiet until fold-out.
    FoldSend {
        /// The low member absorbing this donor (`r - p2`).
        partner: usize,
    },
    /// Fold-in collector (`r < extra`): combines `partner`'s donated
    /// accumulator into its own before the butterfly.
    FoldCombine {
        /// The high member donating (`r + p2`).
        partner: usize,
    },
    /// Fold-out sender (`r < extra`): sends the final accumulator back to
    /// `partner` (no local change).
    FoldOut {
        /// The high member waiting for the result (`r + p2`).
        partner: usize,
    },
    /// Fold-out receiver (`r ≥ p2`): receives the final accumulator.
    FoldRecv {
        /// The low member sending the result (`r - p2`).
        partner: usize,
    },
    /// Not involved in this leg.
    Idle,
}

/// Number of legs in the butterfly all-reduce over `p` members
/// (`log2(p2)` exchanges, plus a fold-in and a fold-out leg when `p` is
/// not a power of two). 0 for `p == 1`.
pub fn tslu_leg_count(p: usize) -> usize {
    assert!(p >= 1);
    let p2 = prev_pow2(p);
    let bf = p2.trailing_zeros() as usize;
    if p == p2 {
        bf
    } else {
        bf + 2
    }
}

/// Role of member `r` in leg `leg` of the butterfly over `p` members.
///
/// # Panics
/// If `leg >= tslu_leg_count(p)` or `r >= p`.
pub fn tslu_leg_role(p: usize, leg: usize, r: usize) -> LegRole {
    assert!(r < p && leg < tslu_leg_count(p));
    let p2 = prev_pow2(p);
    let extra = p - p2;
    let bf = p2.trailing_zeros() as usize;
    let fold = usize::from(extra > 0);
    if fold == 1 && leg == 0 {
        return if r >= p2 {
            LegRole::FoldSend { partner: r - p2 }
        } else if r < extra {
            LegRole::FoldCombine { partner: r + p2 }
        } else {
            LegRole::Idle
        };
    }
    if leg < fold + bf {
        let mask = 1usize << (leg - fold);
        return if r < p2 { LegRole::Exchange { partner: r ^ mask } } else { LegRole::Idle };
    }
    // Fold-out leg.
    if r >= p2 {
        LegRole::FoldRecv { partner: r - p2 }
    } else if r < extra {
        LegRole::FoldOut { partner: r + p2 }
    } else {
        LegRole::Idle
    }
}

/// The slot holding member `r`'s butterfly accumulator once `l` legs have
/// completed: pass-through legs (fold sends, idle) do not rewrite it, so
/// this walks back to the last writing leg (slot `x` is written by leg
/// `x − 1`; slot 0 is the local election). Shared by the DAG builder's
/// edge endpoints and the real-data runner's mailbox keys, so the two
/// views of the reduction tree cannot drift apart.
pub fn tslu_acc_slot(p: usize, l: usize, r: usize) -> usize {
    let mut l = l;
    while l > 0 {
        match tslu_leg_role(p, l - 1, r) {
            LegRole::Exchange { .. } | LegRole::FoldCombine { .. } | LegRole::FoldRecv { .. } => {
                return l;
            }
            _ => l -= 1,
        }
    }
    0
}

/// Block-cyclic geometry shared by the DAG builder, the cost model, and
/// the real-data runner: pure `NUMROC` arithmetic over an [`LuShape`] and
/// a `Pr × Pc` grid, so all three agree on which rank owns what.
#[derive(Debug, Clone, Copy)]
pub struct DistGeom {
    /// Global block geometry (panel width `nb` is the distribution block).
    pub shape: LuShape,
    /// Process rows.
    pub pr: usize,
    /// Process columns.
    pub pc: usize,
}

impl DistGeom {
    /// Flat rank of grid position `(prow, pcol)` (column-major, BLACS "C"
    /// order — identical to `calu_netsim::Grid::rank_of`).
    pub fn rank(&self, prow: usize, pcol: usize) -> usize {
        pcol * self.pr + prow
    }

    /// Process row owning the diagonal block of step `k`.
    pub fn cprow(&self, k: usize) -> usize {
        k % self.pr
    }

    /// Process column owning block column `j` (for `j == k`: the panel).
    pub fn pcol_of(&self, j: usize) -> usize {
        j % self.pc
    }

    /// Width of panel `k`.
    pub fn jb(&self, k: usize) -> usize {
        self.shape.panel_width(k)
    }

    /// Width of block column `j`.
    pub fn wj(&self, j: usize) -> usize {
        self.shape.col_range(j).len()
    }

    /// Local rows on `prow` with global index `≥ g`.
    pub fn rows_at_least(&self, prow: usize, g: usize) -> usize {
        numroc(self.shape.m, self.shape.nb, prow, self.pr)
            - numroc(g.min(self.shape.m), self.shape.nb, prow, self.pr)
    }

    /// Local rows on `prow` in the panel of step `k` (global `≥ k·nb`).
    pub fn panel_rows(&self, prow: usize, k: usize) -> usize {
        self.rows_at_least(prow, k * self.shape.nb)
    }

    /// Local rows on `prow` below the panel of step `k`
    /// (global `≥ k·nb + jb`).
    pub fn below_rows(&self, prow: usize, k: usize) -> usize {
        self.rows_at_least(prow, k * self.shape.nb + self.jb(k))
    }

    /// Columns of block column `j` updated by step `k`'s trailing work:
    /// the whole block for `j > k`, the remainder right of a ragged panel
    /// for `j == k`, 0 for `j < k`.
    pub fn upd_width(&self, k: usize, j: usize) -> usize {
        match j.cmp(&k) {
            std::cmp::Ordering::Greater => self.wj(j),
            std::cmp::Ordering::Equal => self.wj(j) - self.jb(k),
            std::cmp::Ordering::Less => 0,
        }
    }

    /// Columns of block column `j` the pivot-row exchange of step `k`
    /// touches under `alg` (`PDGETF2` swapped its panel columns already).
    pub fn swap_width(&self, k: usize, j: usize, alg: DistPanelAlg) -> usize {
        match alg {
            DistPanelAlg::Tslu => self.wj(j),
            DistPanelAlg::Getf2 => {
                if j == k {
                    self.wj(j) - self.jb(k)
                } else {
                    self.wj(j)
                }
            }
        }
    }

    /// Binomial-tree depth at which the member at offset `rel` from the
    /// root receives a broadcast (0 at the root) — the latency hops a
    /// recv task is charged.
    pub fn bcast_hops(p: usize, root: usize, member: usize) -> usize {
        let rel = (member + p - root) % p;
        (usize::BITS - rel.leading_zeros()) as usize
    }
}

/// Candidate-set payload size in 8-byte words for a width-`b` tournament
/// (the same `2 + b + b²` as `calu-core`'s `Candidates`).
fn cand_words(b: usize) -> usize {
    2 + b + b * b
}

fn dtask(kind: DistKind, k: usize, j: usize, rank: usize) -> Task {
    Task::Dist(DistTask { kind, k: k as u32, j: j as u32, rank: rank as u32 })
}

impl LuDag {
    /// Builds the distributed DAG of 2D block-cyclic CALU over a
    /// `(Pr, Pc)` grid at the given panel lookahead depth. The `nb` of
    /// `shape` is both the algorithmic panel width and the distribution
    /// block (the same 1:1 coupling `core::dist` uses).
    ///
    /// # Panics
    /// If `nb == 0`, `lookahead == 0`, or a grid dimension is 0.
    pub fn build_dist(shape: LuShape, grid: (usize, usize), lookahead: usize) -> Self {
        Self::build_dist_with(shape, grid, lookahead, DistPanelAlg::Tslu)
    }

    /// [`LuDag::build_dist`] with an explicit panel algorithm
    /// (`PDGETRF`'s `PDGETF2` panel instead of TSLU).
    pub fn build_dist_with(
        shape: LuShape,
        grid: (usize, usize),
        lookahead: usize,
        alg: DistPanelAlg,
    ) -> Self {
        let (pr, pc) = grid;
        assert!(shape.nb > 0, "panel width nb must be positive");
        assert!(lookahead > 0, "lookahead depth must be at least 1");
        assert!(pr > 0 && pc > 0, "grid dimensions must be positive");
        let g = DistGeom { shape, pr, pc };
        let steps = shape.steps();
        let cb = shape.col_blocks();
        let legs = tslu_leg_count(pr);

        let mut tasks: Vec<Task> = Vec::new();
        let mut id_of: HashMap<Task, TaskId> = HashMap::new();
        let mut by_step: Vec<Vec<TaskId>> = vec![Vec::new(); steps];
        let mut push = |t: Task, tasks: &mut Vec<Task>, by_step: &mut Vec<Vec<TaskId>>| {
            let id = tasks.len();
            tasks.push(t);
            by_step[t.step()].push(id);
            id_of.insert(t, id);
        };

        for k in 0..steps {
            let cprow = g.cprow(k);
            let cpcol = g.pcol_of(k);
            match alg {
                DistPanelAlg::Tslu => {
                    for prow in 0..pr {
                        push(
                            dtask(DistKind::Cand, k, 0, g.rank(prow, cpcol)),
                            &mut tasks,
                            &mut by_step,
                        );
                    }
                    for leg in 0..legs {
                        for prow in 0..pr {
                            if tslu_leg_role(pr, leg, prow) != LegRole::Idle {
                                push(
                                    dtask(DistKind::TsluLeg, k, leg, g.rank(prow, cpcol)),
                                    &mut tasks,
                                    &mut by_step,
                                );
                            }
                        }
                    }
                }
                DistPanelAlg::Getf2 => {
                    push(
                        dtask(DistKind::PanelGetf2, k, 0, g.rank(cprow, cpcol)),
                        &mut tasks,
                        &mut by_step,
                    );
                }
            }
            for prow in 0..pr {
                push(dtask(DistKind::PivSend, k, 0, g.rank(prow, cpcol)), &mut tasks, &mut by_step);
                for pcol in 0..pc {
                    if pcol != cpcol {
                        push(
                            dtask(DistKind::PivRecv, k, 0, g.rank(prow, pcol)),
                            &mut tasks,
                            &mut by_step,
                        );
                    }
                }
            }
            for j in 0..cb {
                if g.swap_width(k, j, alg) > 0 {
                    push(
                        dtask(DistKind::Swap, k, j, g.rank(cprow, g.pcol_of(j))),
                        &mut tasks,
                        &mut by_step,
                    );
                }
            }
            if alg == DistPanelAlg::Tslu {
                push(dtask(DistKind::WSend, k, 0, g.rank(cprow, cpcol)), &mut tasks, &mut by_step);
                for prow in 0..pr {
                    push(
                        dtask(DistKind::Second, k, 0, g.rank(prow, cpcol)),
                        &mut tasks,
                        &mut by_step,
                    );
                }
            }
            for prow in 0..pr {
                if g.panel_rows(prow, k) > 0 {
                    push(
                        dtask(DistKind::PanelSend, k, 0, g.rank(prow, cpcol)),
                        &mut tasks,
                        &mut by_step,
                    );
                    for pcol in 0..pc {
                        if pcol != cpcol {
                            push(
                                dtask(DistKind::PanelRecv, k, 0, g.rank(prow, pcol)),
                                &mut tasks,
                                &mut by_step,
                            );
                        }
                    }
                }
            }
            for j in k..cb {
                if g.upd_width(k, j) == 0 {
                    continue;
                }
                let pcol = g.pcol_of(j);
                push(dtask(DistKind::Trsm, k, j, g.rank(cprow, pcol)), &mut tasks, &mut by_step);
                push(dtask(DistKind::USend, k, j, g.rank(cprow, pcol)), &mut tasks, &mut by_step);
                for prow in 0..pr {
                    if g.below_rows(prow, k) > 0 {
                        if prow != cprow {
                            push(
                                dtask(DistKind::URecv, k, j, g.rank(prow, pcol)),
                                &mut tasks,
                                &mut by_step,
                            );
                        }
                        push(
                            dtask(DistKind::Gemm, k, j, g.rank(prow, pcol)),
                            &mut tasks,
                            &mut by_step,
                        );
                    }
                }
            }
        }

        // The producer task of process row `r`'s butterfly accumulator
        // after `l` legs of step `k` (slot `x` was written by leg `x - 1`;
        // slot 0 by the local election).
        let acc_producer = |k: usize, l: usize, r: usize| -> Task {
            let cpcol = g.pcol_of(k);
            match tslu_acc_slot(pr, l, r) {
                0 => dtask(DistKind::Cand, k, 0, g.rank(r, cpcol)),
                slot => dtask(DistKind::TsluLeg, k, slot - 1, g.rank(r, cpcol)),
            }
        };

        let id = |t: Task, id_of: &HashMap<Task, TaskId>| -> TaskId {
            *id_of.get(&t).unwrap_or_else(|| panic!("edge endpoint {t} must exist"))
        };
        let mut edges: Vec<(TaskId, TaskId)> = Vec::new();
        for (tid, &t) in tasks.iter().enumerate() {
            let Task::Dist(DistTask { kind, k, j, rank }) = t else { unreachable!() };
            let (k, j, rank) = (k as usize, j as usize, rank as usize);
            let (prow, pcol) = (rank % pr, rank / pr);
            let cprow = g.cprow(k);
            let cpcol = g.pcol_of(k);
            let dep = |p: Task, edges: &mut Vec<(TaskId, TaskId)>| {
                edges.push((id(p, &id_of), tid));
            };
            match kind {
                DistKind::Cand | DistKind::PanelGetf2 => {
                    if k > 0 {
                        // The panel's block column fully updated through
                        // step k-1 on every contributing process row.
                        let prows: Vec<usize> = match kind {
                            DistKind::Cand => vec![prow],
                            _ => (0..pr).collect(),
                        };
                        for pw in prows {
                            if g.panel_rows(pw, k) > 0 {
                                dep(dtask(DistKind::Gemm, k - 1, k, g.rank(pw, cpcol)), &mut edges);
                            }
                        }
                    }
                    // Lookahead throttle: panels run at most `d` steps
                    // ahead of the slowest task of step k - d - 1.
                    if k > lookahead {
                        for &p in &by_step[k - lookahead - 1] {
                            edges.push((p, tid));
                        }
                    }
                }
                DistKind::TsluLeg => match tslu_leg_role(pr, j, prow) {
                    LegRole::Exchange { partner } => {
                        dep(acc_producer(k, j, prow), &mut edges);
                        dep(acc_producer(k, j, partner), &mut edges);
                    }
                    LegRole::FoldSend { .. } | LegRole::FoldOut { .. } => {
                        dep(acc_producer(k, j, prow), &mut edges);
                    }
                    LegRole::FoldCombine { partner } => {
                        dep(acc_producer(k, j, prow), &mut edges);
                        dep(dtask(DistKind::TsluLeg, k, j, g.rank(partner, cpcol)), &mut edges);
                    }
                    LegRole::FoldRecv { partner } => {
                        dep(dtask(DistKind::TsluLeg, k, j, g.rank(partner, cpcol)), &mut edges);
                    }
                    LegRole::Idle => unreachable!("idle legs are not emitted"),
                },
                DistKind::PivSend => match alg {
                    DistPanelAlg::Tslu => dep(acc_producer(k, legs, prow), &mut edges),
                    DistPanelAlg::Getf2 => {
                        dep(dtask(DistKind::PanelGetf2, k, 0, g.rank(cprow, cpcol)), &mut edges);
                    }
                },
                DistKind::PivRecv => {
                    dep(dtask(DistKind::PivSend, k, 0, g.rank(prow, cpcol)), &mut edges);
                }
                DistKind::Swap => {
                    // The swap list on this task's process column.
                    if pcol == cpcol {
                        dep(dtask(DistKind::PivSend, k, 0, g.rank(cprow, cpcol)), &mut edges);
                    } else {
                        dep(dtask(DistKind::PivRecv, k, 0, g.rank(cprow, pcol)), &mut edges);
                    }
                    if k == 0 {
                        continue;
                    }
                    if j >= k {
                        // Rows ≥ k·nb of a trailing column were last
                        // written by step k-1's gemms on each process row.
                        for pw in 0..pr {
                            if g.panel_rows(pw, k) > 0 {
                                dep(dtask(DistKind::Gemm, k - 1, j, g.rank(pw, pcol)), &mut edges);
                            }
                        }
                    } else if j == k - 1 {
                        // First left swap of the just-finished panel
                        // column: anti-dependence on the packed-panel
                        // stagings that read the unswapped L₂₁ (the
                        // distributed analogue of the shared DAG's
                        // first-left-swap edge).
                        let prev_cpcol = g.pcol_of(k - 1);
                        for pw in 0..pr {
                            if g.panel_rows(pw, k - 1) > 0 {
                                dep(
                                    dtask(DistKind::PanelSend, k - 1, 0, g.rank(pw, prev_cpcol)),
                                    &mut edges,
                                );
                            }
                        }
                    } else {
                        // Swaps on the same column do not commute.
                        dep(
                            dtask(DistKind::Swap, k - 1, j, g.rank(g.cprow(k - 1), pcol)),
                            &mut edges,
                        );
                    }
                }
                DistKind::WSend => {
                    dep(dtask(DistKind::Swap, k, k, g.rank(cprow, cpcol)), &mut edges);
                }
                DistKind::Second => {
                    dep(dtask(DistKind::WSend, k, 0, g.rank(cprow, cpcol)), &mut edges);
                }
                DistKind::PanelSend => match alg {
                    DistPanelAlg::Tslu => {
                        dep(dtask(DistKind::Second, k, 0, g.rank(prow, cpcol)), &mut edges);
                    }
                    DistPanelAlg::Getf2 => {
                        dep(dtask(DistKind::PanelGetf2, k, 0, g.rank(cprow, cpcol)), &mut edges);
                        // The panel columns were also row-swapped by the
                        // trailing swap task of the panel's own block
                        // column when a ragged remainder exists; ordering
                        // with it is irrelevant (disjoint columns).
                    }
                },
                DistKind::PanelRecv => {
                    dep(dtask(DistKind::PanelSend, k, 0, g.rank(prow, cpcol)), &mut edges);
                }
                DistKind::Trsm => {
                    dep(dtask(DistKind::Swap, k, j, g.rank(cprow, pcol)), &mut edges);
                    let panel = if pcol == cpcol {
                        dtask(DistKind::PanelSend, k, 0, g.rank(cprow, cpcol))
                    } else {
                        dtask(DistKind::PanelRecv, k, 0, g.rank(cprow, pcol))
                    };
                    dep(panel, &mut edges);
                }
                DistKind::USend => {
                    dep(dtask(DistKind::Trsm, k, j, g.rank(cprow, pcol)), &mut edges);
                }
                DistKind::URecv => {
                    dep(dtask(DistKind::USend, k, j, g.rank(cprow, pcol)), &mut edges);
                }
                DistKind::Gemm => {
                    dep(dtask(DistKind::Swap, k, j, g.rank(cprow, pcol)), &mut edges);
                    let panel = if pcol == cpcol {
                        dtask(DistKind::PanelSend, k, 0, g.rank(prow, cpcol))
                    } else {
                        dtask(DistKind::PanelRecv, k, 0, g.rank(prow, pcol))
                    };
                    dep(panel, &mut edges);
                    let u = if prow == cprow {
                        dtask(DistKind::USend, k, j, g.rank(cprow, pcol))
                    } else {
                        dtask(DistKind::URecv, k, j, g.rank(prow, pcol))
                    };
                    dep(u, &mut edges);
                }
            }
        }

        LuDag::from_parts(shape, lookahead, tasks, edges, pr * pc, Some((pr, pc)))
    }
}

/// Modeled cost of one distributed task: kernel compute, message
/// injections (`msgs` messages totalling `words` 8-byte words on `link`),
/// and uncounted wire time (`transit`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistTaskCost {
    /// Modeled kernel seconds (γ terms).
    pub compute: f64,
    /// Modeled flops behind [`Self::compute`].
    pub flops: f64,
    /// Message count charged to this task's accounting. Broadcast
    /// deliveries are counted at the *receiver* (one per member, like the
    /// point-to-point sends of a real binomial tree), so totals stay
    /// comparable to a `run_sim` report's.
    pub msgs: u64,
    /// 8-byte words moved by those counted messages.
    pub words: u64,
    /// Link class the messages travel on.
    pub link: Link,
    /// Modeled wire seconds occupying this task *without* counting as its
    /// own injections: a broadcast root's injection (delivered — and
    /// counted — at a receiver) and the extra tree hops beyond a deep
    /// receiver's final one. Accounted as waiting (idle) time.
    pub transit: f64,
}

impl DistTaskCost {
    const ZERO: Self =
        Self { compute: 0.0, flops: 0.0, msgs: 0, words: 0, link: Link::Col, transit: 0.0 };

    /// `Σ (α + wᵢ·β)` for this task's counted messages.
    pub fn send_time(&self, mch: &MachineConfig) -> f64 {
        self.msgs as f64 * mch.alpha(self.link) + self.words as f64 * mch.beta(self.link)
    }

    /// Send time plus transit plus compute — the task's modeled duration.
    pub fn total(&self, mch: &MachineConfig) -> f64 {
        self.compute + self.send_time(mch) + self.transit
    }
}

/// Prices every task of a distributed DAG from a machine's α-β-γ terms —
/// the same calibration the `core::dist` skeletons charge, at per-task
/// granularity. A broadcast recv task's duration is its binomial-tree hop
/// depth (`hops · (α + w·β)` — the path latency the waiting rank sees),
/// of which exactly one message is counted toward its accounting and the
/// rest is [`DistTaskCost::transit`]; the matching send task carries the
/// root's injection as transit. Message/word *totals* therefore match the
/// `p − 1` point-to-point sends of the real collective.
#[derive(Debug, Clone)]
pub struct DistCostModel {
    /// Geometry of the factorization and grid.
    pub geom: DistGeom,
    /// Which panel algorithm the DAG models.
    pub alg: DistPanelAlg,
    /// `true` prices panel elections with recursive `rgetf2`, `false`
    /// with classic `getf2` (the Tables 3-4 knob).
    pub recursive_panel: bool,
    /// Machine calibration.
    pub mch: MachineConfig,
}

impl DistCostModel {
    /// Send half of a broadcast over `p` members: the root's injection is
    /// wire occupancy (transit); the delivery is counted at a receiver.
    fn bcast_send(&self, p: usize, words: usize, link: Link) -> DistTaskCost {
        DistTaskCost {
            transit: if p > 1 { self.mch.t_msg(words, link) } else { 0.0 },
            link,
            ..DistTaskCost::ZERO
        }
    }

    /// Recv half of a broadcast delivered after `hops` tree levels: one
    /// counted message (the final hop) plus `hops - 1` levels of transit.
    fn bcast_recv(&self, hops: usize, words: usize, link: Link) -> DistTaskCost {
        debug_assert!(hops >= 1, "recv tasks exist only for non-root members");
        DistTaskCost {
            msgs: 1,
            words: words as u64,
            link,
            transit: (hops - 1) as f64 * self.mch.t_msg(words, link),
            ..DistTaskCost::ZERO
        }
    }

    fn t_local_lu(&self, m: usize, n: usize) -> f64 {
        if self.recursive_panel {
            self.mch.t_rgetf2(m, n)
        } else {
            self.mch.t_getf2(m, n)
        }
    }

    /// Serialized modeled time of the whole `PDGETF2` panel of step `k`
    /// (the column's ranks advance in lockstep, so one timeline is
    /// faithful): per column a scan, `2·log₂Pr` combine rounds, one
    /// pivot-row exchange, and the rank-1 update.
    fn getf2_panel(&self, k: usize) -> DistTaskCost {
        let g = &self.geom;
        let (nb, pr) = (g.shape.nb, g.pr);
        let jb = g.jb(k);
        let mut compute = 0.0;
        let mut flops = 0.0;
        let mut msgs = 0u64;
        let mut words = 0u64;
        for jj in 0..jb {
            let gc = k * nb + jj;
            let scan = (0..pr).map(|pw| g.rows_at_least(pw, gc) as f64).fold(0.0_f64, f64::max);
            compute += scan * self.mch.gamma1;
            if pr > 1 {
                let w = (jb + 2) as u64;
                msgs += 2 * ceil_log2(pr) as u64 + 1;
                words += 2 * ceil_log2(pr) as u64 * w + jb as u64;
            }
            let mut upd = 0.0_f64;
            for pw in 0..pr {
                let below = g.rows_at_least(pw, gc + 1);
                if below > 0 {
                    let mut t = self.mch.gamma_div + below as f64 * self.mch.gamma1;
                    flops += below as f64;
                    if jj + 1 < jb {
                        t += self.mch.t_ger(below, jb - jj - 1);
                        flops += flops_ger(below, jb - jj - 1);
                    }
                    upd = upd.max(t);
                }
            }
            compute += upd;
        }
        DistTaskCost { compute, flops, msgs, words, link: Link::Col, transit: 0.0 }
    }

    /// The modeled cost of `task` (0 for shared-memory kinds).
    pub fn cost(&self, task: Task) -> DistTaskCost {
        let Task::Dist(DistTask { kind, k, j, rank }) = task else {
            return DistTaskCost::ZERO;
        };
        let g = &self.geom;
        let (pr, pc) = (g.pr, g.pc);
        let (k, j, rank) = (k as usize, j as usize, rank as usize);
        let (prow, pcol) = (rank % pr, rank / pr);
        let jb = g.jb(k);
        let cprow = g.cprow(k);
        let cpcol = g.pcol_of(k);
        let one_if = |cond: bool| u64::from(cond);
        match kind {
            DistKind::Cand => {
                let rows = g.panel_rows(prow, k);
                DistTaskCost {
                    compute: self.t_local_lu(rows.max(1), jb),
                    flops: flops_getf2(rows, jb),
                    ..DistTaskCost::ZERO
                }
            }
            DistKind::TsluLeg => {
                let w = cand_words(jb) as u64;
                let combine = matches!(
                    tslu_leg_role(pr, j, prow),
                    LegRole::Exchange { .. } | LegRole::FoldCombine { .. }
                );
                let sends = !matches!(
                    tslu_leg_role(pr, j, prow),
                    LegRole::FoldRecv { .. } | LegRole::FoldCombine { .. }
                );
                DistTaskCost {
                    compute: if combine { self.mch.t_getf2(2 * jb, jb) } else { 0.0 },
                    flops: if combine { flops_getf2(2 * jb, jb) } else { 0.0 },
                    msgs: one_if(sends),
                    words: if sends { w } else { 0 },
                    link: Link::Col,
                    transit: 0.0,
                }
            }
            DistKind::PanelGetf2 => self.getf2_panel(k),
            DistKind::PivSend => self.bcast_send(pc, jb, Link::Row),
            DistKind::PivRecv => {
                self.bcast_recv(DistGeom::bcast_hops(pc, cpcol, pcol), jb, Link::Row)
            }
            DistKind::Swap => {
                let w = g.swap_width(k, j, self.alg);
                let rounds = if pr > 1 { 2 * ceil_log2(pr) as u64 } else { 0 };
                DistTaskCost {
                    msgs: rounds,
                    words: rounds * (jb * w) as u64,
                    link: Link::Col,
                    ..DistTaskCost::ZERO
                }
            }
            DistKind::WSend => self.bcast_send(pr, jb * jb, Link::Col),
            DistKind::Second => {
                let below = g.below_rows(prow, k);
                // The diagonal member owns W locally; the others receive
                // it down the column.
                let comm = if prow == cprow {
                    DistTaskCost::ZERO
                } else {
                    self.bcast_recv(DistGeom::bcast_hops(pr, cprow, prow), jb * jb, Link::Col)
                };
                DistTaskCost {
                    compute: self.mch.t_getf2(jb, jb) + self.mch.t_trsm_right(below, jb),
                    flops: flops_getf2(jb, jb) + flops_trsm_right(below, jb),
                    ..comm
                }
            }
            DistKind::PanelSend => self.bcast_send(pc, g.panel_rows(prow, k) * jb, Link::Row),
            DistKind::PanelRecv => self.bcast_recv(
                DistGeom::bcast_hops(pc, cpcol, pcol),
                g.panel_rows(prow, k) * jb,
                Link::Row,
            ),
            DistKind::Trsm => {
                let w = g.upd_width(k, j);
                DistTaskCost {
                    compute: self.mch.t_trsm_left(jb, w),
                    flops: flops_trsm_left(jb, w),
                    ..DistTaskCost::ZERO
                }
            }
            DistKind::USend => self.bcast_send(pr, jb * g.upd_width(k, j), Link::Col),
            DistKind::URecv => self.bcast_recv(
                DistGeom::bcast_hops(pr, cprow, prow),
                jb * g.upd_width(k, j),
                Link::Col,
            ),
            DistKind::Gemm => {
                let rows = g.below_rows(prow, k);
                let w = g.upd_width(k, j);
                DistTaskCost {
                    compute: self.mch.t_gemm(rows, w, jb),
                    flops: flops_gemm(rows, w, jb),
                    ..DistTaskCost::ZERO
                }
            }
        }
    }
}

/// Modeled execution of a distributed DAG: per-rank timelines, synthesized
/// per-rank accounting, and the makespan.
#[derive(Debug, Clone)]
pub struct DistSchedule {
    /// One timeline per rank (send / compute / idle segments) — ready for
    /// `calu_netsim::render_gantt`.
    pub traces: Vec<RankTrace>,
    /// Synthesized per-rank accounting in `run_sim` report form.
    pub per_rank: Vec<RankStats>,
    /// Completion time of the modeled schedule.
    pub makespan: f64,
}

/// List-schedules a distributed DAG with one processor per rank: each rank
/// runs its own tasks, taking the highest-priority ready task whenever it
/// is free (the same critical-path-first policy the executors use). Comm
/// portions of a task are recorded as `Send` segments, kernel portions as
/// `Compute`, gaps as `Idle`. Deterministic.
pub fn simulate_dist_schedule(
    dag: &LuDag,
    cost: impl Fn(Task) -> DistTaskCost,
    mch: &MachineConfig,
) -> DistSchedule {
    let ranks = dag.ranks();
    let n = dag.len();
    let mut deps = dag.dep_counts().to_vec();
    let mut pools: Vec<
        std::collections::BinaryHeap<std::cmp::Reverse<(crate::dag::Prio, TaskId)>>,
    > = (0..ranks).map(|_| std::collections::BinaryHeap::new()).collect();
    for (id, &d) in deps.iter().enumerate() {
        if d == 0 {
            pools[dag.owner(id)].push(std::cmp::Reverse((dag.priority(id), id)));
        }
    }
    // One running task per rank: (finish_time, id).
    let mut running: Vec<Option<(f64, TaskId)>> = vec![None; ranks];
    let mut free_since = vec![0.0_f64; ranks];
    let mut stats: Vec<RankStats> = vec![RankStats::default(); ranks];
    let mut traces: Vec<RankTrace> = vec![RankTrace::default(); ranks];
    let mut now = 0.0_f64;
    let mut done = 0usize;

    while done < n {
        // Start work on every free rank with a ready task.
        for r in 0..ranks {
            if running[r].is_none() {
                if let Some(std::cmp::Reverse((_, id))) = pools[r].pop() {
                    let c = cost(dag.tasks()[id]);
                    let send = c.send_time(mch);
                    // Communication occupancy = counted injections plus
                    // uncounted wire transit; transit is accounted as
                    // waiting time, like a netsim recv.
                    let comm = send + c.transit;
                    if now > free_since[r] {
                        traces[r].events.push(TraceEvent {
                            kind: SegKind::Idle,
                            start: free_since[r],
                            end: now,
                        });
                        stats[r].idle_time += now - free_since[r];
                    }
                    if comm > 0.0 {
                        traces[r].events.push(TraceEvent {
                            kind: SegKind::Send,
                            start: now,
                            end: now + comm,
                        });
                    }
                    if c.compute > 0.0 {
                        traces[r].events.push(TraceEvent {
                            kind: SegKind::Compute,
                            start: now + comm,
                            end: now + comm + c.compute,
                        });
                    }
                    stats[r].compute_time += c.compute;
                    stats[r].send_time += send;
                    stats[r].idle_time += c.transit;
                    stats[r].alpha_time += c.msgs as f64 * mch.alpha(c.link);
                    stats[r].beta_time += c.words as f64 * mch.beta(c.link);
                    stats[r].msgs_sent += c.msgs;
                    stats[r].words_sent += c.words;
                    stats[r].flops += c.flops;
                    running[r] = Some((now + comm + c.compute, id));
                }
            }
        }
        // Advance to the earliest completion.
        let (mut best_t, mut best_r) = (f64::INFINITY, usize::MAX);
        for (r, slot) in running.iter().enumerate() {
            if let Some((t, _)) = slot {
                if *t < best_t {
                    best_t = *t;
                    best_r = r;
                }
            }
        }
        assert!(best_r != usize::MAX, "schedule stalled with {done}/{n} tasks done");
        let (t, id) = running[best_r].take().unwrap();
        now = t;
        free_since[best_r] = t;
        stats[best_r].time = stats[best_r].time.max(t);
        done += 1;
        for &s in dag.successors(id) {
            deps[s] -= 1;
            if deps[s] == 0 {
                pools[dag.owner(s)].push(std::cmp::Reverse((dag.priority(s), s)));
            }
        }
    }
    let makespan = stats.iter().fold(0.0_f64, |m, s| m.max(s.time));
    DistSchedule { traces, per_rank: stats, makespan }
}

// ---------------------------------------------------------------------------
// Communication-ledger terms
// ---------------------------------------------------------------------------

/// The canonical communication-ledger term a distributed task kind is
/// accounted under (`None` for pure-compute kinds). Shared by the modeled
/// side ([`modeled_comm_terms`]), the exact mailbox predictor
/// ([`expected_mailbox_comm`]), and `calu-core`'s measured `dist_rt`
/// instrumentation, so the three views of a transfer land in the same row
/// of a reconciliation table.
pub fn dist_comm_term(kind: DistKind) -> Option<&'static str> {
    match kind {
        DistKind::TsluLeg => Some("tslu_leg"),
        DistKind::PivSend | DistKind::PivRecv => Some("piv_bcast"),
        DistKind::PanelSend | DistKind::PanelRecv => Some("panel_bcast"),
        DistKind::USend | DistKind::URecv => Some("u_bcast"),
        DistKind::WSend | DistKind::Second => Some("w_bcast"),
        DistKind::Swap => Some("swap"),
        DistKind::PanelGetf2 => Some("panel_getf2"),
        DistKind::Cand | DistKind::Trsm | DistKind::Gemm => None,
    }
}

fn sum_terms(totals: BTreeMap<&'static str, (u64, u64)>, source: &'static str) -> Vec<CommTerm> {
    totals.into_iter().map(|(term, (msgs, words))| CommTerm { term, msgs, words, source }).collect()
}

/// The paper's skeleton predictions per ledger term: [`DistCostModel::cost`]
/// message/word counts summed over the DAG's tasks and grouped by
/// [`dist_comm_term`]. This is the *first-order* side of the
/// reconciliation — e.g. every TSLU leg is charged the full-width
/// candidate payload `2 + b + b²`, where the real mailbox sends smaller
/// sets on late/ragged steps — so reconciling a measured ledger against
/// it quantifies exactly how far the closed forms sit from the wire.
pub fn modeled_comm_terms(dag: &LuDag, model: &DistCostModel) -> Vec<CommTerm> {
    let source = match model.alg {
        DistPanelAlg::Tslu => "skeleton_calu",
        DistPanelAlg::Getf2 => "skeleton_pdgetrf",
    };
    let mut totals: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    for &t in dag.tasks() {
        let Task::Dist(d) = t else { continue };
        let Some(term) = dist_comm_term(d.kind) else { continue };
        let c = model.cost(t);
        let e = totals.entry(term).or_insert((0, 0));
        e.0 += c.msgs;
        e.1 += c.words;
    }
    sum_terms(totals, source)
}

/// The *exact* expected mailbox traffic of a distributed DAG: per ledger
/// term, the message/word totals the real-data runner's mailbox must
/// produce. Unlike the skeleton ([`modeled_comm_terms`]), TSLU leg
/// payloads are predicted by simulating candidate counts through the
/// butterfly — a rank owning `r` panel rows elects `min(r, b)` candidates
/// (payload `2 + c + c·b` words), and a combine keeps `min(c₁ + c₂, b)` —
/// so the prediction is exact even on ragged and late steps where the
/// closed form over-counts. Broadcast terms (pivot list, packed panel,
/// `W`, `U₁₂`) are geometry-determined and counted once per receiver.
///
/// `dist_rt`'s measured ledger equals this prediction term-for-term on
/// every successful run — the property the reconciliation tests assert.
/// The `swap` term (data-dependent pivot-row exchanges) and `PDGETF2`'s
/// internal panel traffic are deliberately absent: they never cross the
/// mailbox, so the skeleton is their only expectation.
pub fn expected_mailbox_comm(dag: &LuDag, geom: &DistGeom, alg: DistPanelAlg) -> Vec<CommTerm> {
    let pr = geom.pr;
    let legs = tslu_leg_count(pr);
    let steps = geom.shape.steps();

    // pre[k][leg][prow]: candidate count of `prow`'s accumulator entering
    // leg `leg` of step `k`'s butterfly.
    let mut pre: Vec<Vec<Vec<usize>>> = Vec::new();
    if alg == DistPanelAlg::Tslu {
        for k in 0..steps {
            let jb = geom.jb(k);
            let mut counts: Vec<usize> = (0..pr).map(|p| geom.panel_rows(p, k).min(jb)).collect();
            let mut per_leg = Vec::with_capacity(legs);
            for leg in 0..legs {
                per_leg.push(counts.clone());
                let prev = counts.clone();
                for (r, c) in counts.iter_mut().enumerate() {
                    *c = match tslu_leg_role(pr, leg, r) {
                        LegRole::Exchange { partner } | LegRole::FoldCombine { partner } => {
                            (prev[r] + prev[partner]).min(jb)
                        }
                        LegRole::FoldRecv { partner } => prev[partner],
                        _ => prev[r],
                    };
                }
            }
            pre.push(per_leg);
        }
    }

    let mut totals: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    let mut add = |term: &'static str, words: usize| {
        let e = totals.entry(term).or_insert((0, 0));
        e.0 += 1;
        e.1 += words as u64;
    };
    for &t in dag.tasks() {
        let Task::Dist(DistTask { kind, k, j, rank }) = t else { continue };
        let (k, j, rank) = (k as usize, j as usize, rank as usize);
        let prow = rank % pr;
        let jb = geom.jb(k);
        match kind {
            DistKind::TsluLeg => {
                // Send roles only — the same `sends` set the cost model
                // charges (both exchange partners, fold donors, fold-out).
                let sends = !matches!(
                    tslu_leg_role(pr, j, prow),
                    LegRole::FoldRecv { .. } | LegRole::FoldCombine { .. }
                );
                if sends {
                    let c = pre[k][j][prow];
                    add("tslu_leg", 2 + c + c * jb);
                }
            }
            DistKind::PivRecv => add("piv_bcast", jb),
            DistKind::PanelRecv => add("panel_bcast", geom.panel_rows(prow, k) * jb),
            DistKind::URecv => add("u_bcast", jb * geom.upd_width(k, j)),
            DistKind::Second if prow != geom.cprow(k) => add("w_bcast", jb * jb),
            _ => {}
        }
    }
    sum_terms(totals, "mailbox_exact")
}

/// The *exact* extra traffic the **threaded** communicator's decomposed
/// `PDGETF2` panel puts on the wire — traffic that simply does not exist
/// under the in-process mailbox, where all process rows of the panel
/// column share one storage and the picket fence reads it directly.
///
/// Once each rank owns its tiles on a separate thread, every panel
/// column `jj` of every step costs, with `pr` process rows and panel
/// width `b_k`:
///
/// * a 3-word candidate all-gather — each of the `pr` participants
///   fetches the other `pr − 1` candidates: `pr·(pr − 1)` messages of 3
///   words each, and
/// * the elected pivot's trailing row (`b_k − 1 − jj` words) fetched by
///   the `pr − 1` non-owners — absent on the last column of a panel.
///
/// The pivot-row *exchange* is deliberately not here: like the
/// trailing-matrix swaps it is data-dependent (only fired when the
/// winner leaves the diagonal row), so it lands in the unmodeled `swap`
/// term on both communicators.
///
/// Returns the single `panel_getf2` [`CommTerm`] (empty when `pr == 1`
/// or the panel algorithm is TSLU, whose butterfly is already counted by
/// [`expected_mailbox_comm`]). The threaded driver appends this to the
/// mailbox expectation, and the reconciliation tests hold the measured
/// ledger to the combined prediction term-for-term.
pub fn expected_threaded_getf2_comm(
    dag: &LuDag,
    geom: &DistGeom,
    alg: DistPanelAlg,
) -> Vec<CommTerm> {
    let pr = geom.pr as u64;
    if alg != DistPanelAlg::Getf2 || pr <= 1 {
        return Vec::new();
    }
    let (mut msgs, mut words) = (0u64, 0u64);
    for &t in dag.tasks() {
        let Task::Dist(DistTask { kind: DistKind::PanelGetf2, k, .. }) = t else { continue };
        let jb = geom.jb(k as usize) as u64;
        for jj in 0..jb {
            msgs += pr * (pr - 1);
            words += 3 * pr * (pr - 1);
            if jj + 1 < jb {
                msgs += pr - 1;
                words += (jb - 1 - jj) * (pr - 1);
            }
        }
    }
    vec![CommTerm { term: "panel_getf2", msgs, words, source: "mailbox_exact" }]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::modeled_time;

    fn shapes() -> Vec<LuShape> {
        vec![
            LuShape { m: 64, n: 64, nb: 8 },
            LuShape { m: 60, n: 100, nb: 16 },
            LuShape { m: 100, n: 40, nb: 16 },
            LuShape { m: 97, n: 97, nb: 16 },
        ]
    }

    #[test]
    fn dist_dag_is_acyclic_and_complete_on_grids() {
        for shape in shapes() {
            for &(pr, pc) in &[(1usize, 1usize), (2, 2), (2, 3), (3, 2), (2, 4), (4, 1)] {
                for alg in [DistPanelAlg::Tslu, DistPanelAlg::Getf2] {
                    for d in [1usize, 2, 3] {
                        let g = LuDag::build_dist_with(shape, (pr, pc), d, alg);
                        let order = g.serial_schedule(); // asserts acyclicity
                        assert_eq!(order.len(), g.len());
                        assert_eq!(g.ranks(), pr * pc);
                        assert_eq!(g.grid(), Some((pr, pc)));
                        for id in 0..g.len() {
                            assert!(g.owner(id) < pr * pc, "owner in range");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn comm_tasks_appear_exactly_when_the_grid_needs_them() {
        let shape = LuShape { m: 64, n: 64, nb: 8 };
        let has = |g: &LuDag, kind: DistKind| {
            g.tasks().iter().any(|t| matches!(t, Task::Dist(d) if d.kind == kind))
        };
        let solo = LuDag::build_dist(shape, (1, 1), 1);
        assert!(!has(&solo, DistKind::TsluLeg), "1x1 grid has no butterfly legs");
        assert!(!has(&solo, DistKind::PivRecv) && !has(&solo, DistKind::PanelRecv));
        assert!(!has(&solo, DistKind::URecv));
        assert!(has(&solo, DistKind::Cand) && has(&solo, DistKind::Second));

        let wide = LuDag::build_dist(shape, (1, 4), 1);
        assert!(has(&wide, DistKind::PivRecv) && has(&wide, DistKind::PanelRecv));
        assert!(!has(&wide, DistKind::TsluLeg), "pr=1: election is local");

        let tall = LuDag::build_dist(shape, (4, 1), 1);
        assert!(has(&tall, DistKind::TsluLeg) && has(&tall, DistKind::URecv));
        assert!(!has(&tall, DistKind::PivRecv), "pc=1: no row broadcasts");

        let pdg = LuDag::build_dist_with(shape, (2, 2), 1, DistPanelAlg::Getf2);
        assert!(has(&pdg, DistKind::PanelGetf2) && !has(&pdg, DistKind::Cand));
        assert!(!has(&pdg, DistKind::Second) && !has(&pdg, DistKind::WSend));
    }

    #[test]
    fn butterfly_roles_are_consistent() {
        for p in 1..=9usize {
            let legs = tslu_leg_count(p);
            for leg in 0..legs {
                for r in 0..p {
                    match tslu_leg_role(p, leg, r) {
                        LegRole::Exchange { partner } => {
                            assert_eq!(
                                tslu_leg_role(p, leg, partner),
                                LegRole::Exchange { partner: r },
                                "p={p} leg={leg}"
                            );
                        }
                        LegRole::FoldSend { partner } => {
                            assert_eq!(
                                tslu_leg_role(p, leg, partner),
                                LegRole::FoldCombine { partner: r }
                            );
                        }
                        LegRole::FoldRecv { partner } => {
                            assert_eq!(
                                tslu_leg_role(p, leg, partner),
                                LegRole::FoldOut { partner: r }
                            );
                        }
                        _ => {}
                    }
                }
            }
        }
        assert_eq!(tslu_leg_count(1), 0);
        assert_eq!(tslu_leg_count(2), 1);
        assert_eq!(tslu_leg_count(3), 3);
        assert_eq!(tslu_leg_count(4), 2);
        assert_eq!(tslu_leg_count(8), 3);
    }

    #[test]
    fn deeper_lookahead_shortens_the_modeled_rank_schedule() {
        let shape = LuShape { m: 1024, n: 1024, nb: 64 };
        let mch = MachineConfig::power5();
        let model = DistCostModel {
            geom: DistGeom { shape, pr: 2, pc: 2 },
            alg: DistPanelAlg::Tslu,
            recursive_panel: true,
            mch: mch.clone(),
        };
        let cp = |d: usize| {
            LuDag::build_dist(shape, (2, 2), d).critical_path(|t| model.cost(t).total(&mch))
        };
        let mk = |d: usize| {
            let dag = LuDag::build_dist(shape, (2, 2), d);
            simulate_dist_schedule(&dag, |t| model.cost(t), &mch).makespan
        };
        // The infinite-parallelism CP never gets worse with depth (the
        // throttle only loses edges)…
        let (c1, c2, c4) = (cp(1), cp(2), cp(4));
        assert!(c2 <= c1 + 1e-15, "depth 2 CP ({c2}) must not exceed depth 1 ({c1})");
        assert!(c4 <= c2 + 1e-15);
        // …and the resource-constrained per-rank schedule — where the
        // depth-1 throttle forces panels to wait out every rank's bulk
        // gemms of step k-2 — shows a real win at depth 2.
        let (m1, m2) = (mk(1), mk(2));
        assert!(
            m1 / m2 > 1.01,
            "depth 2 must shorten the modeled rank schedule: d1 {m1} vs d2 {m2}"
        );
        // And the schedule exposes real parallelism against one rank.
        let total: f64 = LuDag::build_dist(shape, (2, 2), 2)
            .tasks()
            .iter()
            .map(|&t| model.cost(t).total(&mch))
            .sum();
        assert!(total / m2 > 1.5, "modeled parallel efficiency {}", total / m2);
    }

    #[test]
    fn schedule_simulator_is_consistent_and_deterministic() {
        let shape = LuShape { m: 256, n: 256, nb: 32 };
        let mch = MachineConfig::power5();
        let dag = LuDag::build_dist(shape, (2, 2), 2);
        let model = DistCostModel {
            geom: DistGeom { shape, pr: 2, pc: 2 },
            alg: DistPanelAlg::Tslu,
            recursive_panel: false,
            mch: mch.clone(),
        };
        let run = || simulate_dist_schedule(&dag, |t| model.cost(t), &mch);
        let s1 = run();
        let s2 = run();
        assert_eq!(s1.makespan, s2.makespan, "modeled schedule must be deterministic");
        assert_eq!(s1.traces.len(), 4);
        // The rank schedule can never beat the infinite-parallelism CP,
        // and can never beat the per-rank serial bound either.
        let cp = dag.critical_path(|t| model.cost(t).total(&mch));
        assert!(s1.makespan >= cp - 1e-12, "makespan {} vs cp {cp}", s1.makespan);
        for (r, (tr, st)) in s1.traces.iter().zip(&s1.per_rank).enumerate() {
            // Send segments cover counted injections plus wire transit;
            // transit is accounted as idle, so the cross-kind sums match.
            assert!(
                (tr.total(SegKind::Compute) - st.compute_time).abs() < 1e-9,
                "rank {r}: compute trace/stats disagree"
            );
            let comm_plus_wait = tr.total(SegKind::Send) + tr.total(SegKind::Idle);
            assert!(
                (comm_plus_wait - (st.send_time + st.idle_time)).abs() < 1e-9,
                "rank {r}: comm+wait trace/stats disagree"
            );
            assert!((st.alpha_time + st.beta_time - st.send_time).abs() < 1e-12);
            assert!(st.time <= s1.makespan + 1e-15);
            for w in tr.events.windows(2) {
                assert!(w[0].end <= w[1].start + 1e-12, "rank {r}: overlapping segments");
            }
        }
        assert!(s1.per_rank.iter().map(|s| s.flops).sum::<f64>() > 0.0);
        assert!(s1.per_rank.iter().map(|s| s.msgs_sent).sum::<u64>() > 0);
    }

    #[test]
    fn dist_tasks_have_zero_shared_memory_cost() {
        let shape = LuShape { m: 64, n: 64, nb: 8 };
        let mch = MachineConfig::power5();
        let dag = LuDag::build_dist(shape, (2, 2), 1);
        for &t in dag.tasks() {
            assert_eq!(modeled_time(&shape, t, &mch), 0.0);
        }
    }

    #[test]
    fn exact_mailbox_prediction_matches_the_skeleton_when_panels_stay_full() {
        let terms_of = |shape: LuShape| {
            let geom = DistGeom { shape, pr: 2, pc: 2 };
            let model = DistCostModel {
                geom,
                alg: DistPanelAlg::Tslu,
                recursive_panel: false,
                mch: MachineConfig::power5(),
            };
            let dag = LuDag::build_dist(shape, (2, 2), 2);
            let exact = expected_mailbox_comm(&dag, &geom, DistPanelAlg::Tslu);
            let modeled = modeled_comm_terms(&dag, &model);
            (exact, modeled)
        };
        let find = |v: &[CommTerm], t: &str| v.iter().find(|c| c.term == t).cloned();

        // Tall matrix: every rank holds ≥ jb panel rows at every step, so
        // each butterfly payload carries a full jb candidates and the
        // exact predictor reproduces the skeleton term-for-term.
        let (exact, modeled) = terms_of(LuShape { m: 256, n: 64, nb: 8 });
        for term in ["tslu_leg", "piv_bcast", "panel_bcast", "u_bcast", "w_bcast"] {
            let e = find(&exact, term).expect(term);
            let m = find(&modeled, term).expect(term);
            assert_eq!((e.msgs, e.words), (m.msgs, m.words), "term {term}");
            assert_eq!(e.source, "mailbox_exact");
            assert_eq!(m.source, "skeleton_calu");
        }
        // The skeleton also prices terms the mailbox never carries.
        assert!(find(&modeled, "swap").is_some());
        assert!(find(&exact, "swap").is_none() && find(&exact, "panel_getf2").is_none());

        // Square matrix: tail steps go ragged, late butterflies carry
        // fewer than jb candidates, and the exact word count drops
        // strictly below the first-order skeleton — while the message
        // counts (one per send role) still agree exactly.
        let (exact, modeled) = terms_of(LuShape { m: 64, n: 64, nb: 8 });
        let e = find(&exact, "tslu_leg").unwrap();
        let m = find(&modeled, "tslu_leg").unwrap();
        assert_eq!(e.msgs, m.msgs);
        assert!(e.words < m.words, "ragged tail must shed words: {} vs {}", e.words, m.words);
    }
}
