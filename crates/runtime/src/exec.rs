//! Executors: how a [`LuDag`] actually runs.
//!
//! Two implementations behind one [`Executor`] trait:
//!
//! * [`SerialExecutor`] — replays tasks one at a time in the fixed
//!   critical-path-priority topological order of
//!   [`LuDag::serial_schedule`]. Run-to-run deterministic (same DAG ⇒ same
//!   task sequence), which the property tests assert; the baseline every
//!   speedup is measured against.
//! * [`ThreadedExecutor`] — `std::thread` workers stealing from one shared
//!   critical-path-ordered ready pool, with per-task completion events
//!   carried back over a `crossbeam` channel. As soon as `Panel(k+1)`'s
//!   column slice is updated, the panel outranks every bulk `gemm` in the
//!   pool, so panels hide behind trailing updates at any lookahead depth —
//!   the generalization of the old hardwired depth-1 `rayon::join`.
//!   (A single shared pool rather than per-worker deques: at panel/tile
//!   granularity the pool lock is touched a few thousand times per
//!   factorization, far below contention levels that would repay deques.)
//!
//! Both record per-task wall-clock timings; [`ExecReport::traces`] converts
//! them into `calu-netsim` [`RankTrace`]s (one simulated "rank" per worker)
//! so the existing Gantt renderer and time-attribution machinery draw real
//! executions exactly like simulated ones.
//!
//! # Failure semantics
//!
//! The only fallible task kind is `Panel` (an exactly singular pivot).
//! Because panels are chained through the DAG, the first panel error is
//! the same error the sequential sweep would hit; on error the executors
//! cancel every not-yet-started task and surface the error (the runner is
//! responsible for reporting the **absolute** elimination step).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use calu_matrix::{Error, Result};
use calu_netsim::{RankTrace, SegKind, TraceEvent};
use calu_obs::Recorder;

use crate::dag::{LuDag, Prio, Task, TaskId};

/// Runs the body of one task. Implemented by the algorithm layer
/// (`calu-core`'s LU runner); the runtime itself never touches matrix data.
///
/// `run` is called once per task, from whichever worker thread claims it;
/// the DAG's edges guarantee that concurrently running tasks touch
/// disjoint data.
pub trait TaskRunner: Sync {
    /// Executes `task`. An `Err` cancels all tasks that have not started.
    fn run(&self, task: Task) -> Result<()>;
}

impl<F: Fn(Task) -> Result<()> + Sync> TaskRunner for F {
    fn run(&self, task: Task) -> Result<()> {
        self(task)
    }
}

/// Wall-clock record of one executed task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskTiming {
    /// The task that ran.
    pub task: Task,
    /// Worker index that ran it (0 for the serial executor).
    pub worker: usize,
    /// Seconds from run start to the instant the task became *ready*
    /// (its last dependency completed; 0 for tasks ready at submission).
    pub ready: f64,
    /// Seconds from run start to task start.
    pub start: f64,
    /// Seconds from run start to task end.
    pub end: f64,
}

impl TaskTiming {
    /// Scheduler queue delay: seconds between this task becoming ready and
    /// a worker starting it. The per-task ingredient of the profile's
    /// *overhead* partition (see `calu_obs::analyze`).
    pub fn queue_delay(&self) -> f64 {
        (self.start - self.ready).max(0.0)
    }
}

/// What an executor did: completion order, per-task timings, makespan.
#[derive(Debug, Clone, Default)]
pub struct ExecReport {
    /// Tasks in completion order (for the serial executor this is the
    /// deterministic execution order).
    pub order: Vec<Task>,
    /// Per-task wall-clock records.
    pub timings: Vec<TaskTiming>,
    /// Number of workers used.
    pub workers: usize,
    /// Total wall-clock seconds for the whole run.
    pub wall: f64,
}

impl ExecReport {
    /// Per-worker timelines in `calu-netsim` trace form: one rank per
    /// worker, `Compute` segments for tasks, explicit `Idle` segments for
    /// the gaps — ready for [`calu_netsim::render_gantt`].
    pub fn traces(&self) -> Vec<RankTrace> {
        let mut per: Vec<Vec<TaskTiming>> = vec![Vec::new(); self.workers];
        for &t in &self.timings {
            per[t.worker].push(t);
        }
        per.into_iter()
            .map(|mut ts| {
                ts.sort_by(|a, b| a.start.total_cmp(&b.start));
                let mut events = Vec::with_capacity(2 * ts.len());
                let mut clock = 0.0_f64;
                for t in ts {
                    if t.start > clock {
                        events.push(TraceEvent { kind: SegKind::Idle, start: clock, end: t.start });
                    }
                    if t.end > t.start {
                        events.push(TraceEvent {
                            kind: SegKind::Compute,
                            start: t.start,
                            end: t.end,
                        });
                    }
                    clock = clock.max(t.end);
                }
                RankTrace { events }
            })
            .collect()
    }

    /// Seconds spent computing, summed over workers.
    pub fn busy(&self) -> f64 {
        self.timings.iter().map(|t| t.end - t.start).sum()
    }

    /// Total scheduler queue delay (ready-to-start gap) in seconds,
    /// summed over all tasks.
    pub fn queue_delay(&self) -> f64 {
        self.timings.iter().map(TaskTiming::queue_delay).sum()
    }

    /// Per-lane queue-delay nanoseconds, keyed the way this report's
    /// spans are attributed — `(pid, tid)` = ([`Task::trace_rank`],
    /// worker index) — ready to feed `calu_obs::analyze` as the
    /// overhead side channel. Lanes are sorted; zero-delay lanes are
    /// still listed so every span lane has a row.
    pub fn queue_delay_ns_by_lane(&self) -> Vec<((u32, u32), u64)> {
        let mut lanes: std::collections::BTreeMap<(u32, u32), u64> =
            std::collections::BTreeMap::new();
        for t in &self.timings {
            *lanes.entry((t.task.trace_rank(), t.worker as u32)).or_default() +=
                (t.queue_delay() * 1e9).round().max(0.0) as u64;
        }
        lanes.into_iter().collect()
    }

    /// Replays this report's timings into a trace [`Recorder`], shifting
    /// every interval by `offset_s` seconds. The offset lets a caller that
    /// runs several executions in sequence (e.g. the serve layer's
    /// factor-then-solve pipeline) place each report on one shared
    /// timeline instead of overlapping them all at zero.
    ///
    /// Span attribution matches the executors' live tracing: `pid` is the
    /// task's owning rank ([`Task::trace_rank`]), `tid` the worker index,
    /// `cat` the task-kind slug ([`Task::cat`]).
    pub fn record_into(&self, recorder: &Recorder, offset_s: f64) {
        for t in &self.timings {
            recorder.record_interval(
                t.task.to_string(),
                t.task.cat(),
                t.task.trace_rank(),
                t.worker as u32,
                offset_s + t.start,
                offset_s + t.end,
            );
        }
    }
}

/// Records one finished task into a recorder (shared by both executors).
fn record_timing(recorder: &Recorder, t: &TaskTiming) {
    recorder.record_interval(
        t.task.to_string(),
        t.task.cat(),
        t.task.trace_rank(),
        t.worker as u32,
        t.start,
        t.end,
    );
}

/// Strategy for driving a [`LuDag`] to completion.
pub trait Executor {
    /// Runs every task of `dag` through `runner`, respecting the edges.
    ///
    /// # Errors
    /// The first task failure (see the module docs on cancellation).
    fn execute<R: TaskRunner>(&self, dag: &LuDag, runner: &R) -> Result<ExecReport> {
        self.execute_traced(dag, runner, None)
    }

    /// [`Executor::execute`] that additionally records one [`Span`] per
    /// completed task into `recorder` (`pid` = owning rank, `tid` =
    /// worker). Recording happens off the worker hot path — in the serial
    /// replay loop, or on the threaded coordinator as completion events
    /// arrive — so tracing costs one lock and one push per task.
    ///
    /// # Errors
    /// The first task failure (see the module docs on cancellation).
    ///
    /// [`Span`]: calu_obs::Span
    fn execute_traced<R: TaskRunner>(
        &self,
        dag: &LuDag,
        runner: &R,
        recorder: Option<&Recorder>,
    ) -> Result<ExecReport>;
}

/// Deterministic one-worker executor: replays [`LuDag::serial_schedule`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialExecutor;

impl Executor for SerialExecutor {
    fn execute_traced<R: TaskRunner>(
        &self,
        dag: &LuDag,
        runner: &R,
        recorder: Option<&Recorder>,
    ) -> Result<ExecReport> {
        let t0 = Instant::now();
        let mut report = ExecReport { workers: 1, ..Default::default() };
        // Replay dependency counts alongside the schedule so each task
        // carries the instant it became ready (its last dependency's end;
        // 0 for tasks with no dependencies) — the schedule order
        // guarantees dependencies complete before their successors run.
        let mut deps = dag.dep_counts().to_vec();
        let mut ready_at = vec![0.0_f64; dag.len()];
        for id in dag.serial_schedule() {
            let task = dag.tasks()[id];
            let start = t0.elapsed().as_secs_f64();
            runner.run(task)?;
            let end = t0.elapsed().as_secs_f64();
            let timing = TaskTiming { task, worker: 0, ready: ready_at[id], start, end };
            for &succ in dag.successors(id) {
                deps[succ] -= 1;
                if deps[succ] == 0 {
                    ready_at[succ] = end;
                }
            }
            if let Some(rec) = recorder {
                record_timing(rec, &timing);
            }
            report.order.push(task);
            report.timings.push(timing);
        }
        report.wall = t0.elapsed().as_secs_f64();
        Ok(report)
    }
}

/// Shared scheduler state behind the pool lock.
struct Pool {
    ready: BinaryHeap<Reverse<(Prio, TaskId)>>,
    deps: Vec<usize>,
    /// Seconds from run start at which each task became ready (stamped
    /// when its dependency count reaches zero; 0 for initially-ready
    /// tasks). Read by the claiming worker for queue-delay accounting.
    ready_at: Vec<f64>,
    /// Tasks not yet claimed by a worker.
    unclaimed: usize,
    canceled: bool,
}

/// Work-stealing threaded executor: `threads` OS workers (0 ⇒ the host's
/// available parallelism) pull the highest-priority ready task from a
/// shared pool; completions flow back to the caller over a crossbeam
/// channel.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadedExecutor {
    /// Worker count; 0 uses `std::thread::available_parallelism`.
    pub threads: usize,
}

impl ThreadedExecutor {
    /// An executor with an explicit worker count (0 ⇒ host parallelism).
    pub fn new(threads: usize) -> Self {
        Self { threads }
    }

    fn resolved_threads(&self, tasks: usize) -> usize {
        let t = if self.threads == 0 {
            std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1)
        } else {
            self.threads
        };
        t.clamp(1, tasks.max(1))
    }
}

/// A worker's report of one finished task, sent over the event channel.
enum Event {
    Done(TaskTiming),
    Failed(Task, Error),
}

/// Cancels the pool if the holder unwinds: a panicking task body must wake
/// the parked workers (so they exit and drop their event senders) instead
/// of leaving the whole executor deadlocked; the panic itself then
/// propagates through `std::thread::scope`'s implicit join.
struct CancelOnUnwind<'a> {
    pool: &'a Mutex<Pool>,
    bell: &'a Condvar,
    armed: bool,
}

impl Drop for CancelOnUnwind<'_> {
    fn drop(&mut self) {
        if self.armed {
            // Reach the flag even if a sibling panic already poisoned the
            // lock — a double panic here would abort the process.
            self.pool.lock().unwrap_or_else(std::sync::PoisonError::into_inner).canceled = true;
            self.bell.notify_all();
        }
    }
}

impl Executor for ThreadedExecutor {
    fn execute_traced<R: TaskRunner>(
        &self,
        dag: &LuDag,
        runner: &R,
        recorder: Option<&Recorder>,
    ) -> Result<ExecReport> {
        let total = dag.len();
        let workers = self.resolved_threads(total);
        if total == 0 {
            return Ok(ExecReport { workers, ..Default::default() });
        }

        let mut ready = BinaryHeap::new();
        let deps = dag.dep_counts().to_vec();
        for (id, &d) in deps.iter().enumerate() {
            if d == 0 {
                ready.push(Reverse((dag.priority(id), id)));
            }
        }
        let pool = Mutex::new(Pool {
            ready,
            deps,
            ready_at: vec![0.0; total],
            unclaimed: total,
            canceled: false,
        });
        let bell = Condvar::new();
        let (events_tx, events_rx) = crossbeam::channel::unbounded::<Event>();

        let t0 = Instant::now();
        std::thread::scope(|s| {
            for w in 0..workers {
                let pool = &pool;
                let bell = &bell;
                let tx = events_tx.clone();
                // If the pool mutex is ever poisoned (a panic originating
                // under the lock — debug dep-count checks, allocator
                // failure growing the heap), the poison flag carries no
                // meaning: the pool's invariants hold at every unlock and
                // cancellation is flag-based. Every lock recovers with
                // `into_inner` rather than cascading the sibling workers
                // into a secondary panic per worker.
                s.spawn(move || loop {
                    let (id, ready) = {
                        let mut p = pool.lock().expect("runtime pool poisoned");
                        loop {
                            if p.canceled || p.unclaimed == 0 {
                                return;
                            }
                            if let Some(Reverse((_, id))) = p.ready.pop() {
                                p.unclaimed -= 1;
                                break (id, p.ready_at[id]);
                            }
                            p = bell.wait(p).expect("runtime pool poisoned");
                        }
                    };
                    let task = dag.tasks()[id];
                    let start = t0.elapsed().as_secs_f64();
                    let mut guard = CancelOnUnwind { pool, bell, armed: true };
                    let result = runner.run(task);
                    guard.armed = false;
                    let end = t0.elapsed().as_secs_f64();
                    match result {
                        Ok(()) => {
                            let mut p = pool.lock().expect("runtime pool poisoned");
                            for &succ in dag.successors(id) {
                                p.deps[succ] -= 1;
                                if p.deps[succ] == 0 {
                                    p.ready_at[succ] = end;
                                    p.ready.push(Reverse((dag.priority(succ), succ)));
                                }
                            }
                            drop(p);
                            bell.notify_all();
                            let _ = tx.send(Event::Done(TaskTiming {
                                task,
                                worker: w,
                                ready,
                                start,
                                end,
                            }));
                        }
                        Err(e) => {
                            pool.lock().expect("runtime pool poisoned").canceled = true;
                            bell.notify_all();
                            let _ = tx.send(Event::Failed(task, e));
                            return;
                        }
                    }
                });
            }
            drop(events_tx);

            // The submitting thread collects completion events; the scope
            // joins the workers before we leave.
            let mut report = ExecReport { workers, ..Default::default() };
            let mut failure: Option<(usize, Error)> = None;
            while let Ok(ev) = events_rx.recv() {
                match ev {
                    Event::Done(t) => {
                        if let Some(rec) = recorder {
                            record_timing(rec, &t);
                        }
                        report.order.push(t.task);
                        report.timings.push(t);
                    }
                    Event::Failed(task, e) => {
                        // Keep the earliest-step failure for determinism
                        // (in practice panels are chained, so at most one
                        // task can fail first).
                        let key = task.step();
                        if failure.as_ref().is_none_or(|(k, _)| key < *k) {
                            failure = Some((key, e));
                        }
                    }
                }
            }
            report.wall = t0.elapsed().as_secs_f64();
            match failure {
                Some((_, e)) => Err(e),
                None => {
                    // A shortfall without a recorded failure means a task
                    // body panicked; the scope join below re-raises it, so
                    // this (possibly partial) report is discarded.
                    debug_assert!(
                        report.order.len() == total
                            || pool
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .canceled,
                        "all tasks must complete"
                    );
                    Ok(report)
                }
            }
        })
    }
}

/// Which executor a front-end should use; a small enum so callers can pick
/// at run time without naming executor types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorKind {
    /// Deterministic priority replay on the calling thread.
    Serial,
    /// Work-stealing OS threads (0 ⇒ host parallelism).
    Threaded {
        /// Worker count; 0 uses the host's available parallelism.
        threads: usize,
    },
}

impl ExecutorKind {
    /// Dispatches to the matching [`Executor`] implementation.
    ///
    /// # Errors
    /// Propagates the first task failure.
    pub fn execute<R: TaskRunner>(&self, dag: &LuDag, runner: &R) -> Result<ExecReport> {
        self.execute_traced(dag, runner, None)
    }

    /// Dispatches to [`Executor::execute_traced`] on the matching
    /// implementation.
    ///
    /// # Errors
    /// Propagates the first task failure.
    pub fn execute_traced<R: TaskRunner>(
        &self,
        dag: &LuDag,
        runner: &R,
        recorder: Option<&Recorder>,
    ) -> Result<ExecReport> {
        match *self {
            ExecutorKind::Serial => SerialExecutor.execute_traced(dag, runner, recorder),
            ExecutorKind::Threaded { threads } => {
                ThreadedExecutor::new(threads).execute_traced(dag, runner, recorder)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::LuShape;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn dag(m: usize, n: usize, nb: usize, d: usize) -> LuDag {
        LuDag::build(LuShape { m, n, nb }, d)
    }

    /// Runner that records completion order and checks dependence safety:
    /// a task may only run once all its predecessors have.
    struct CheckRunner<'a> {
        dag: &'a LuDag,
        done: Vec<std::sync::atomic::AtomicBool>,
        count: AtomicUsize,
    }

    impl<'a> CheckRunner<'a> {
        fn new(dag: &'a LuDag) -> Self {
            let done = (0..dag.len()).map(|_| std::sync::atomic::AtomicBool::new(false)).collect();
            Self { dag, done, count: AtomicUsize::new(0) }
        }
    }

    impl TaskRunner for CheckRunner<'_> {
        fn run(&self, task: Task) -> Result<()> {
            let id = self.dag.tasks().iter().position(|&t| t == task).unwrap();
            for pred in 0..self.dag.len() {
                if self.dag.successors(pred).contains(&id) {
                    assert!(
                        self.done[pred].load(Ordering::SeqCst),
                        "{} ran before its predecessor {}",
                        task,
                        self.dag.tasks()[pred]
                    );
                }
            }
            self.done[id].store(true, Ordering::SeqCst);
            self.count.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }
    }

    #[test]
    fn serial_executor_runs_every_task_in_dependence_order() {
        let g = dag(128, 128, 32, 2);
        let r = CheckRunner::new(&g);
        let rep = SerialExecutor.execute(&g, &r).unwrap();
        assert_eq!(r.count.load(Ordering::SeqCst), g.len());
        assert_eq!(rep.order.len(), g.len());
        assert_eq!(rep.workers, 1);
    }

    #[test]
    fn threaded_executor_respects_edges_with_many_workers() {
        for d in [1usize, 2, 3] {
            let g = dag(160, 160, 32, d);
            let r = CheckRunner::new(&g);
            let rep = ThreadedExecutor::new(4).execute(&g, &r).unwrap();
            assert_eq!(r.count.load(Ordering::SeqCst), g.len());
            assert_eq!(rep.order.len(), g.len());
            assert_eq!(rep.workers, 4);
        }
    }

    #[test]
    fn serial_schedule_is_reproducible() {
        let g = dag(130, 90, 16, 3);
        let r1 = SerialExecutor.execute(&g, &|_t| Ok(())).unwrap();
        let r2 = SerialExecutor.execute(&g, &|_t| Ok(())).unwrap();
        assert_eq!(r1.order, r2.order, "serial replay must be deterministic");
    }

    #[test]
    fn failure_cancels_unstarted_tasks() {
        let g = dag(128, 128, 32, 1);
        let ran = AtomicUsize::new(0);
        let fail_on = Task::Panel { k: 1 };
        let runner = |t: Task| -> Result<()> {
            ran.fetch_add(1, Ordering::SeqCst);
            if t == fail_on {
                Err(Error::SingularPivot { step: 32 })
            } else {
                Ok(())
            }
        };
        for kind in [ExecutorKind::Serial, ExecutorKind::Threaded { threads: 3 }] {
            ran.store(0, Ordering::SeqCst);
            let err = kind.execute(&g, &runner).unwrap_err();
            assert_eq!(err, Error::SingularPivot { step: 32 });
            assert!(
                ran.load(Ordering::SeqCst) < g.len(),
                "{kind:?}: tasks after the failure must be canceled"
            );
        }
    }

    #[test]
    fn panicking_task_propagates_instead_of_deadlocking() {
        // A panic inside a task body (user observer, debug assert) must
        // unwind out of execute(), not park the other workers forever.
        let g = dag(128, 128, 32, 1);
        let boom = Task::Panel { k: 1 };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ThreadedExecutor::new(3).execute(&g, &|t: Task| -> Result<()> {
                assert!(t != boom, "injected task panic");
                Ok(())
            })
        }));
        assert!(result.is_err(), "the injected panic must propagate to the caller");
    }

    #[test]
    fn task_panic_does_not_cascade_to_sibling_workers() {
        // Regression guard for the poisoned-pool cascade: if the pool
        // mutex is ever poisoned, workers that used to die in
        // `expect("runtime pool poisoned")` fanned one failure out into a
        // panic per worker; they now recover with `into_inner` (the pool's
        // invariants hold at every unlock, and cancellation is flag-based,
        // so the poison bit carries no information). Note a task-body
        // panic alone does *not* poison the mutex — `CancelOnUnwind`
        // acquires its guard mid-unwind, and guards acquired while already
        // panicking don't poison on release — poisoning needs a panic
        // originating under the lock (debug dep-count checks, allocator
        // failure growing the ready heap). This test pins the black-box
        // contract around the injected panic: it propagates exactly once,
        // siblings shut down cleanly, and no panic mentions poison — so a
        // reintroduced `expect` shows up the moment lock scopes or std
        // poisoning semantics make it reachable.
        //
        // Panic hooks are process-global and tests run concurrently, so
        // the counters only track panics matching those two patterns; the
        // previous hook keeps handling everything else and stays
        // installed afterwards (restoring it would race other tests).
        const MARKER: &str = "solve-pool-poison-probe";
        static MARKER_PANICS: AtomicUsize = AtomicUsize::new(0);
        static POISON_PANICS: AtomicUsize = AtomicUsize::new(0);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| info.payload().downcast_ref::<String>().map(String::as_str))
                .unwrap_or("");
            if msg.contains(MARKER) {
                MARKER_PANICS.fetch_add(1, Ordering::SeqCst);
                return; // our own injection: counted, not printed
            }
            if msg.contains("poisoned") {
                POISON_PANICS.fetch_add(1, Ordering::SeqCst);
            }
            prev(info);
        }));

        // Enough slow tasks that several workers are parked in `bell.wait`
        // or mid-task when the probe panics — the pre-fix cascade hit both
        // the waiters and the workers finishing their current task.
        let g = dag(192, 192, 32, 2);
        let boom = Task::Panel { k: 1 };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ThreadedExecutor::new(4).execute(&g, &|t: Task| -> Result<()> {
                std::thread::sleep(std::time::Duration::from_micros(100));
                assert!(t != boom, "{MARKER}");
                Ok(())
            })
        }));
        assert!(result.is_err(), "the injected panic must propagate to the caller");
        assert_eq!(MARKER_PANICS.load(Ordering::SeqCst), 1, "exactly one task body may panic");
        assert_eq!(
            POISON_PANICS.load(Ordering::SeqCst),
            0,
            "sibling workers must recover from the poisoned pool, not cascade"
        );
    }

    #[test]
    fn traces_cover_workers_and_fill_idle_gaps() {
        let g = dag(96, 96, 32, 1);
        let rep = ThreadedExecutor::new(2)
            .execute(&g, &|_t| {
                std::thread::sleep(std::time::Duration::from_micros(200));
                Ok(())
            })
            .unwrap();
        let traces = rep.traces();
        assert_eq!(traces.len(), 2);
        let busy: f64 = traces.iter().map(|t| t.total(SegKind::Compute)).sum();
        assert!((busy - rep.busy()).abs() < 1e-12);
        for tr in &traces {
            for w in tr.events.windows(2) {
                assert!(w[0].end <= w[1].start + 1e-12, "segments must not overlap");
            }
        }
    }

    #[test]
    fn empty_dag_is_a_no_op() {
        let g = LuDag::build(LuShape { m: 0, n: 0, nb: 8 }, 1);
        let rep = ThreadedExecutor::default().execute(&g, &|_t| Ok(())).unwrap();
        assert!(rep.order.is_empty());
    }

    #[test]
    fn traced_execution_records_one_span_per_task_on_both_executors() {
        let g = dag(96, 96, 32, 1);
        for kind in [ExecutorKind::Serial, ExecutorKind::Threaded { threads: 3 }] {
            let rec = Recorder::new();
            let rep = kind.execute_traced(&g, &|_t| Ok(()), Some(&rec)).unwrap();
            assert_eq!(rec.len(), g.len(), "{kind:?}");
            let spans = rec.snapshot();
            // Shared-memory tasks all live in rank lane 0; tids cover the
            // worker set; spans match the report's timings 1:1.
            assert!(spans.iter().all(|s| s.pid == 0));
            assert!(spans.iter().all(|s| (s.tid as usize) < rep.workers));
            assert!(spans.iter().all(|s| s.dur_us >= 0.0));
            let names: std::collections::HashSet<_> =
                spans.iter().map(|s| s.name.clone()).collect();
            assert!(names.contains("Panel(0)"));
            assert!(spans.iter().any(|s| s.cat == "gemm"));
            // The export of a live recording round-trips.
            assert!(calu_obs::parse_chrome_trace(&rec.chrome_trace()).is_ok());
        }
    }

    #[test]
    fn ready_stamps_bound_task_starts_on_both_executors() {
        let g = dag(128, 128, 32, 2);
        for kind in [ExecutorKind::Serial, ExecutorKind::Threaded { threads: 3 }] {
            let rep = kind
                .execute(&g, &|_t| {
                    std::thread::sleep(std::time::Duration::from_micros(50));
                    Ok(())
                })
                .unwrap();
            assert_eq!(rep.timings.len(), g.len());
            for t in &rep.timings {
                assert!(t.ready >= 0.0, "{kind:?}: {} ready must be non-negative", t.task);
                assert!(
                    t.ready <= t.start + 1e-12,
                    "{kind:?}: {} cannot start before it is ready",
                    t.task
                );
                assert!(t.queue_delay() >= 0.0);
            }
            // Dependency-free tasks are ready at submission time.
            let first = rep.timings.iter().find(|t| t.task == Task::Panel { k: 0 }).unwrap();
            assert_eq!(first.ready, 0.0, "{kind:?}: Panel(0) has no dependencies");
            // The lane table covers the delays exactly (ns rounding).
            let total_ns: u64 = rep.queue_delay_ns_by_lane().iter().map(|&(_, v)| v).sum();
            assert!((total_ns as f64 / 1e9 - rep.queue_delay()).abs() < 1e-3 * g.len() as f64);
        }
    }

    #[test]
    fn record_into_replays_a_report_with_offset() {
        let g = dag(96, 96, 32, 1);
        let rep = SerialExecutor.execute(&g, &|_t| Ok(())).unwrap();
        let rec = Recorder::new();
        rep.record_into(&rec, 1.0);
        assert_eq!(rec.len(), g.len());
        let spans = rec.snapshot();
        assert!(spans.iter().all(|s| s.ts_us >= 1e6 - 1e-9), "offset must shift all spans");
        // Untraced execute() + replay equals what execute_traced records.
        let rec2 = Recorder::new();
        rep.record_into(&rec2, 0.0);
        let direct: Vec<_> = rec2.snapshot().iter().map(|s| s.name.clone()).collect();
        assert_eq!(direct.len(), g.len());
    }
}
