//! Solve-phase DAG builder: blocked application of completed LU factors
//! to a block of right-hand sides.
//!
//! The factorization DAG ([`LuDag::build`]) pays the `O(n³)` cost once;
//! this module emits the `O(n²·nrhs)` graph that amortizes it — the
//! dependency DAG of
//!
//! ```text
//! x ← U⁻¹ (L⁻¹ (P·b))
//! ```
//!
//! for an `n × nrhs` RHS block, tiled `nb` rows by `rhs_nb` columns.
//! Per RHS block column `j` the tasks are
//!
//! * `SolvePiv(j)` — apply the pivot permutation to the whole column,
//! * `SolveTrsmL(k,j)` — unit-lower triangular solve on diagonal block
//!   `k`, then `SolveGemmL(k,i,j)` updates `xᵢ ← xᵢ − L₍ᵢₖ₎·xₖ` for every
//!   block `i > k` (forward sweep),
//! * `SolveTrsmU(k,j)` / `SolveGemmU(k,i,j)` — the mirrored backward
//!   sweep, `k` descending, updating blocks `i < k`.
//!
//! Distinct RHS block columns are fully independent, so a coalesced batch
//! exposes `rhs_blocks()`-way parallelism even where one column's sweep
//! is a serial chain. Within a column, *write chains* (`GemmL(k-1,i,j) →
//! GemmL(k,i,j)` and the `TrsmL` counterparts) serialize every writer of
//! each tile in a fixed order, so any topological execution — serial or
//! work-stealing — produces bitwise identical solutions.

use crate::dag::{LuDag, LuShape, SolveKind, SolveTask, Task, TaskId};

/// Shape of a blocked solve: factor dimension, RHS count, and the two
/// tile widths (`nb` rows — matching the factorization's panel width —
/// by `rhs_nb` RHS columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveShape {
    /// Factor dimension (the matrix is `n × n`).
    pub n: usize,
    /// Number of right-hand sides.
    pub nrhs: usize,
    /// Row tile height (the factorization's panel width).
    pub nb: usize,
    /// RHS column tile width.
    pub rhs_nb: usize,
}

impl SolveShape {
    /// Number of row blocks, `⌈n/nb⌉`.
    pub fn row_blocks(&self) -> usize {
        self.n.div_ceil(self.nb)
    }

    /// Number of RHS block columns, `⌈nrhs/rhs_nb⌉`.
    pub fn rhs_blocks(&self) -> usize {
        self.nrhs.div_ceil(self.rhs_nb)
    }

    /// Row range of row block `k`.
    pub fn row_range(&self, k: usize) -> std::ops::Range<usize> {
        k * self.nb..self.n.min((k + 1) * self.nb)
    }

    /// Column range of RHS block column `j`.
    pub fn rhs_range(&self, j: usize) -> std::ops::Range<usize> {
        j * self.rhs_nb..self.nrhs.min((j + 1) * self.rhs_nb)
    }
}

impl LuDag {
    /// Builds the solve-phase DAG for applying an `n × n` factorization
    /// (panel width `nb`) to `nrhs` right-hand sides tiled `rhs_nb` wide.
    ///
    /// Every task is a [`Task::Solve`]; the runner supplies the kernels
    /// (pivot application, triangular solves, block updates) exactly as
    /// for the factorization DAG. Each RHS block column contributes
    /// `1 + 2K + K(K−1)` tasks for `K = ⌈n/nb⌉` row blocks.
    ///
    /// # Panics
    ///
    /// Panics if any shape field is zero.
    // Loop indices here are task coordinates (block row/column numbers),
    // not slice positions; iterator rewrites would obscure the geometry.
    #[allow(clippy::needless_range_loop)]
    pub fn build_solve(shape: SolveShape) -> LuDag {
        assert!(
            shape.n > 0 && shape.nrhs > 0 && shape.nb > 0 && shape.rhs_nb > 0,
            "degenerate solve shape {shape:?}"
        );
        let kb = shape.row_blocks();
        let jb = shape.rhs_blocks();

        let mut tasks: Vec<Task> = Vec::new();
        let mut edges: Vec<(TaskId, TaskId)> = Vec::new();
        // Per-column scratch: ids of this column's tasks, indexed by kind.
        let solve = |kind, k: usize, i: usize, j: usize| {
            Task::Solve(SolveTask { kind, k: k as u32, i: i as u32, j: j as u32 })
        };

        for j in 0..jb {
            let base = tasks.len();
            let piv = base;
            tasks.push(solve(SolveKind::Piv, 0, 0, j));
            // Forward sweep ids: TrsmL(k) then its GemmL(k,i) row, k ascending.
            let mut trsm_l = vec![0usize; kb];
            let mut gemm_l = vec![vec![0usize; kb]; kb]; // [k][i], i > k
            for k in 0..kb {
                trsm_l[k] = tasks.len();
                tasks.push(solve(SolveKind::TrsmL, k, k, j));
                for i in k + 1..kb {
                    gemm_l[k][i] = tasks.len();
                    tasks.push(solve(SolveKind::GemmL, k, i, j));
                }
            }
            // Backward sweep ids, k descending.
            let mut trsm_u = vec![0usize; kb];
            let mut gemm_u = vec![vec![0usize; kb]; kb]; // [k][i], i < k
            for k in (0..kb).rev() {
                trsm_u[k] = tasks.len();
                tasks.push(solve(SolveKind::TrsmU, k, k, j));
                for i in 0..k {
                    gemm_u[k][i] = tasks.len();
                    tasks.push(solve(SolveKind::GemmU, k, i, j));
                }
            }

            // Forward sweep edges. TrsmL(k) reads tile k last written by
            // GemmL(k−1,k) (or the pivot application for k = 0); GemmL(k,i)
            // reads xₖ from TrsmL(k) and continues tile i's write chain.
            for k in 0..kb {
                if k == 0 {
                    edges.push((piv, trsm_l[0]));
                } else {
                    edges.push((gemm_l[k - 1][k], trsm_l[k]));
                }
                for i in k + 1..kb {
                    edges.push((trsm_l[k], gemm_l[k][i]));
                    if k > 0 {
                        edges.push((gemm_l[k - 1][i], gemm_l[k][i]));
                    } else {
                        edges.push((piv, gemm_l[k][i]));
                    }
                }
            }
            // Backward sweep edges, mirrored: TrsmU(k) reads tile k last
            // written by GemmU(k+1,k) (or the forward sweep's final
            // TrsmL(K−1) for k = K−1); GemmU(k,i) reads xₖ from TrsmU(k)
            // and continues tile i's write chain — whose previous writer is
            // GemmU(k+1,i), or the forward sweep's last writer of tile i
            // (TrsmL(i)) when k = K−1.
            for k in (0..kb).rev() {
                if k == kb - 1 {
                    edges.push((trsm_l[kb - 1], trsm_u[kb - 1]));
                } else {
                    edges.push((gemm_u[k + 1][k], trsm_u[k]));
                }
                for i in 0..k {
                    edges.push((trsm_u[k], gemm_u[k][i]));
                    if k < kb - 1 {
                        edges.push((gemm_u[k + 1][i], gemm_u[k][i]));
                    } else {
                        edges.push((trsm_l[i], gemm_u[k][i]));
                    }
                }
            }
        }

        // The LuShape only carries what priorities need: row_blocks() via
        // m/nb. Lookahead throttling is a factorization concept (there are
        // no Panel tasks to throttle), so depth 1 is inert here.
        let lu_shape = LuShape { m: shape.n, n: shape.n, nb: shape.nb };
        LuDag::from_parts(lu_shape, 1, tasks, edges, 1, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(n: usize, nrhs: usize, nb: usize, rhs_nb: usize) -> SolveShape {
        SolveShape { n, nrhs, nb, rhs_nb }
    }

    /// Kahn's algorithm replay: the DAG is acyclic and every task runs.
    fn topo_order(dag: &LuDag) -> Vec<TaskId> {
        let mut deps = dag.dep_counts().to_vec();
        let mut ready: Vec<TaskId> = (0..dag.len()).filter(|&t| deps[t] == 0).collect();
        let mut order = Vec::with_capacity(dag.len());
        while let Some(t) = ready.pop() {
            order.push(t);
            for &s in dag.successors(t) {
                deps[s] -= 1;
                if deps[s] == 0 {
                    ready.push(s);
                }
            }
        }
        assert_eq!(order.len(), dag.len(), "cycle or unreachable task");
        order
    }

    #[test]
    fn counts_match_closed_form() {
        for (n, nrhs, nb, rhs_nb) in
            [(96, 24, 32, 8), (100, 17, 32, 8), (64, 1, 16, 4), (40, 40, 40, 40)]
        {
            let s = shape(n, nrhs, nb, rhs_nb);
            let dag = LuDag::build_solve(s);
            let k = s.row_blocks();
            let per_col = 1 + 2 * k + k * (k - 1);
            assert_eq!(dag.len(), per_col * s.rhs_blocks(), "shape {s:?}");
            topo_order(&dag);
        }
    }

    #[test]
    fn single_block_column_is_a_chain() {
        // K = 1: Piv → TrsmL → TrsmU per column, nothing else.
        let dag = LuDag::build_solve(shape(24, 8, 32, 8));
        assert_eq!(dag.len(), 3);
        let order = topo_order(&dag);
        let kinds: Vec<SolveKind> = order
            .iter()
            .map(|&t| match dag.tasks()[t] {
                Task::Solve(s) => s.kind,
                ref other => panic!("unexpected task {other}"),
            })
            .collect();
        assert_eq!(kinds, [SolveKind::Piv, SolveKind::TrsmL, SolveKind::TrsmU]);
    }

    #[test]
    fn columns_are_independent() {
        // No edge crosses RHS block columns: every successor of a task
        // shares its `j`.
        let dag = LuDag::build_solve(shape(96, 32, 32, 8));
        for t in 0..dag.len() {
            let Task::Solve(s) = dag.tasks()[t] else { panic!() };
            for &succ in dag.successors(t) {
                let Task::Solve(s2) = dag.tasks()[succ] else { panic!() };
                assert_eq!(s.j, s2.j, "{} → {}", dag.tasks()[t], dag.tasks()[succ]);
            }
        }
    }

    #[test]
    fn write_chains_serialize_tile_writers() {
        // Any topological order lists the writers of each (tile, column)
        // pair in the fixed program order: Piv, GemmL(0..), TrsmL, GemmU
        // descending, TrsmU — i.e. forward sweep ascending in k, backward
        // sweep descending. Replay a topo order and check per-tile writer
        // sequences are sorted by that program position.
        let s = shape(128, 16, 32, 8);
        let dag = LuDag::build_solve(s);
        let kb = s.row_blocks() as u32;
        // Program position of a task as a writer of tile `i`.
        let pos = |t: &SolveTask| -> u32 {
            match t.kind {
                SolveKind::Piv => 0,
                SolveKind::GemmL => 1 + t.k,             // k ascending
                SolveKind::TrsmL => 1 + t.k,             // after GemmL(k-1,·)
                SolveKind::GemmU => 1 + kb + (kb - t.k), // k descending
                SolveKind::TrsmU => 1 + kb + (kb - t.k),
            }
        };
        let order = topo_order(&dag);
        let mut last: std::collections::HashMap<(u32, u32), u32> = std::collections::HashMap::new();
        for &t in &order {
            let Task::Solve(s) = dag.tasks()[t] else { panic!() };
            if s.kind == SolveKind::Piv {
                continue; // writes every tile before anything else runs
            }
            let key = (s.i, s.j);
            let p = pos(&s);
            if let Some(&prev) = last.get(&key) {
                assert!(prev <= p, "writer order violated at {}", dag.tasks()[t]);
            }
            last.insert(key, p);
        }
    }

    #[test]
    fn priorities_drain_columns_in_order() {
        // Serial (priority-ordered) replay finishes all of column j's
        // tasks before starting column j+1: the first tuple field is j.
        let dag = LuDag::build_solve(shape(96, 24, 32, 8));
        let mut ids: Vec<TaskId> = (0..dag.len()).collect();
        ids.sort_by_key(|&t| dag.priority(t));
        let js: Vec<u32> = ids
            .iter()
            .map(|&t| match dag.tasks()[t] {
                Task::Solve(s) => s.j,
                _ => unreachable!(),
            })
            .collect();
        let mut sorted = js.clone();
        sorted.sort_unstable();
        assert_eq!(js, sorted);
    }
}
