//! # calu-runtime — dataflow task-graph runtime for tiled CALU
//!
//! The paper's future-work question (Section 7) — does ca-pivoting suit
//! parallel LU on multicore machines? — needs more schedule than a
//! hardwired `rayon::join`: HPL-style executions overlap the panel
//! factorization (the critical path of right-looking LU) with trailing
//! updates at a configurable *lookahead depth*. This crate supplies that
//! layer, between the machine layer (`calu-netsim`) and the algorithms
//! (`calu-core`):
//!
//! * [`dag`] — [`LuDag::build`] emits the dependency DAG of blocked
//!   right-looking LU for any `(m, n, nb)`: `Panel`/`Swap`/`Trsm`/`Gemm`
//!   tasks, the anti-dependences that make row-swap deferral sound, and a
//!   panel throttle for any lookahead depth `d ≥ 1`;
//! * [`exec`] — two executors behind the [`Executor`] trait: a
//!   deterministic [`SerialExecutor`] (priority-ordered replay) and a
//!   work-stealing [`ThreadedExecutor`] (`std::thread` workers over a
//!   shared critical-path-first pool, crossbeam completion channel), both
//!   recording per-task timings that convert into `calu-netsim` Gantt
//!   traces.
//!
//! The runtime is algorithm-agnostic: it schedules; a [`TaskRunner`]
//! implemented by the caller supplies the kernels. `calu-core`'s
//! `rt` module binds the real TSLU/BLAS kernels and proves (in tests)
//! that every schedule the runtime can produce yields factors **bitwise
//! identical** to the sequential reference.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dag;
pub mod dist;
pub mod exec;
pub mod solve;

pub use dag::{
    modeled_cache_traffic, modeled_time, modeled_time_layout, panel_tree_levels,
    panel_tree_resolve, DistKind, DistTask, LuDag, LuShape, PanelMode, SolveKind, SolveTask, Task,
    TaskId, TileLocality,
};
pub use dist::{
    dist_comm_term, expected_mailbox_comm, expected_threaded_getf2_comm, modeled_comm_terms,
    simulate_dist_schedule, tslu_acc_slot, tslu_leg_count, tslu_leg_role, DistCostModel, DistGeom,
    DistPanelAlg, DistSchedule, DistTaskCost, LegRole,
};
pub use exec::{
    ExecReport, Executor, ExecutorKind, SerialExecutor, TaskRunner, TaskTiming, ThreadedExecutor,
};
pub use solve::SolveShape;
