//! The task DAG of blocked right-looking LU.
//!
//! [`LuDag::build`] emits, for any `(m, n, nb)`, the dependency graph of
//! the four task kinds of a right-looking blocked factorization:
//!
//! * [`Task::Panel`]`(k)` — TSLU tournament factorization of the full-height
//!   panel (rows `k·nb..m`, the panel's own pivot swaps included);
//! * [`Task::Swap`]`(k, j)` — apply panel `k`'s pivot sequence to block
//!   column `j ≠ k` (rows `k·nb..m`);
//! * [`Task::Trsm`]`(k, j)` — `U₁₂ = L₁₁⁻¹ A₁₂` on block column `j > k`;
//! * [`Task::Gemm`]`(k, i, j)` — `A(i,j) -= L₂₁(i) · U₁₂(j)` on the
//!   trailing tile at block row `i`, block column `j`.
//!
//! The edge set encodes exactly the data flow of the *sequential* sweep
//! (`calu_inplace`), including the two orderings that are easy to miss:
//!
//! * **anti-dependence on `L`**: `Swap(k+1, k)` permutes rows of column
//!   block `k`, which every `Gemm(k, ·, ·)` still reads as `L₂₁` — so the
//!   first left-swap of a column waits for *all* of that step's `gemm`s
//!   (this is the same commutation `tiled.rs` used: swaps are deferred
//!   until the updates that read the unswapped `L` have finished);
//! * **lookahead throttle**: with lookahead depth `d`, `Panel(k)` carries
//!   edges from every task of step `k − d − 1`, so panels run at most `d`
//!   steps ahead of the slowest trailing update. Depth 1 reproduces the
//!   HPL-style schedule of the old hardwired implementation; larger depths
//!   let `Panel(k+2), Panel(k+3), …` start while step `k`'s bulk `gemm`s
//!   drag on.
//!
//! Any topological execution of the DAG produces **bitwise identical**
//! factors to the sequential sweep: every read/write overlap is ordered by
//! an edge, tile splits of `gemm`/`trsm`/row-swaps are per-element
//! reorderings that do not change the fixed k-accumulation order of the
//! kernels, and the panel kernel itself is untouched.
//!
//! [`LuDag::build_with`] additionally offers [`PanelMode::Resident`],
//! which replaces each monolithic `Panel(k)` with a per-tile tournament
//! subgraph ([`Task::PanelElect`] → [`Task::PanelReduce`]\* →
//! [`Task::PanelFinish`] → [`Task::PanelApply`]\*): candidates are elected
//! on resident tiles with no gather/scatter copy of the panel, folded up a
//! deterministic binary tree, and `L₂₁` is formed tile-parallel. Resident
//! executions are bitwise reproducible across executors, depths, and runs
//! — but use a *different* (still deterministic) tournament tree than the
//! gathered reference, so the two modes' factors differ.

use calu_netsim::MachineConfig;

/// Identifies a node in the DAG (index into [`LuDag::tasks`]).
pub type TaskId = usize;

/// One schedulable unit of work. Indices are in units of `nb`-wide blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Task {
    /// TSLU tournament factorization of panel `k` (rows `k·nb..m`,
    /// columns `k·nb..k·nb+jb`), including its own pivot swaps.
    ///
    /// The monolithic panel task of [`PanelMode::Gathered`]; under
    /// [`PanelMode::Resident`] it is replaced by the per-tile tournament
    /// subgraph `PanelElect → PanelReduce* → PanelFinish → PanelApply*`.
    Panel {
        /// Panel step (block column index).
        k: usize,
    },
    /// Tournament leaf of the tile-resident panel ([`PanelMode::Resident`]):
    /// elect tile `(ti, k)`'s `jb` candidate pivot rows by local LU on the
    /// resident tile (no gather — the tile is read in place; only the
    /// `≤ nb × jb` election copy intrinsic to tournament pivoting is made).
    PanelElect {
        /// Panel step.
        k: usize,
        /// Tile row whose candidates are elected (`k ≤ ti < rb`).
        ti: usize,
    },
    /// Internal node of the tile-resident panel's deterministic binary
    /// tournament tree: fold the candidate sets of two subtrees with
    /// `reduce_pair` (lower tile range first, so the winner set is
    /// execution-order-independent).
    PanelReduce {
        /// Panel step.
        k: usize,
        /// Tree level (`≥ 1`; leaves are level 0).
        level: usize,
        /// Lowest tile row of the left (lower) subtree being folded.
        ti: usize,
        /// Lowest tile row of the right (upper) subtree being folded.
        tj: usize,
    },
    /// Root of the tile-resident panel subgraph: publish the tournament's
    /// pivot sequence, apply the winner swaps across the panel's block
    /// column, and factor the diagonal tile's rows (`L₁₁\U₁₁`) — the step
    /// where a genuinely singular panel surfaces.
    PanelFinish {
        /// Panel step.
        k: usize,
    },
    /// Per-tile `L₂₁` formation of the tile-resident panel: scale and
    /// rank-1-update tile `(ti, k)`'s rows against the finished `U₁₁` —
    /// the restriction of the unpivoted panel elimination to that tile,
    /// running concurrently across tiles.
    PanelApply {
        /// Panel step.
        k: usize,
        /// Tile row whose `L₂₁` rows are formed (`ti > k`).
        ti: usize,
    },
    /// Apply panel `k`'s pivot swaps to rows `k·nb..m` of block column `j`.
    Swap {
        /// Panel step whose pivots are applied.
        k: usize,
        /// Target block column (`j < k`: finished `L` columns; `j > k`:
        /// not-yet-factored columns; `j == k`: the remainder of the
        /// panel's own block column when the final panel is narrower than
        /// `nb` — see [`LuShape::update_col_range`]).
        j: usize,
    },
    /// Triangular solve producing the `U₁₂` slice of block column `j` for
    /// step `k` (`j > k`, or `j == k` for the ragged-panel remainder).
    Trsm {
        /// Panel step providing `L₁₁`.
        k: usize,
        /// Target block column.
        j: usize,
    },
    /// Trailing update of the tile at block row `i`, block column `j` for
    /// step `k` (`i > k`, `j > k`).
    Gemm {
        /// Panel step providing `L₂₁` and `U₁₂`.
        k: usize,
        /// Target block row.
        i: usize,
        /// Target block column.
        j: usize,
    },
    /// A distributed-memory task of the 2D block-cyclic DAG
    /// ([`LuDag::build_dist`]): per-rank compute or an explicit
    /// communication task (panel broadcast, TSLU reduce leg, pivot-row
    /// exchange, …) carrying its owning rank. Never emitted by the
    /// shared-memory [`LuDag::build`].
    Dist(DistTask),
    /// A task of the solve-phase DAG ([`LuDag::build_solve`]): blocked
    /// `laswp`/`trsm` application of completed LU factors to a block of
    /// right-hand sides. Never emitted by the factorization builders.
    Solve(SolveTask),
}

/// One task of the triangular-solve DAG ([`LuDag::build_solve`]): apply
/// completed factors `P L U` to block column `j` of a multi-RHS matrix.
/// `k` is the diagonal (row) block the task pivots around, `i` the target
/// row block of an off-diagonal update (`i == k` for diagonal tasks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SolveTask {
    /// What the task does.
    pub kind: SolveKind,
    /// Diagonal row-block index (0 for `Piv`).
    pub k: u32,
    /// Target row block of an off-diagonal update; `== k` otherwise.
    pub i: u32,
    /// RHS block column.
    pub j: u32,
}

/// Task kinds of the solve DAG, in the order a `getrs` sweep applies
/// them: row swaps, then forward substitution with unit-lower `L`
/// (diagonal `TrsmL` blocks and trailing `GemmL` updates), then backward
/// substitution with upper `U` (`TrsmU` / `GemmU`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveKind {
    /// Apply the factorization's full pivot sequence to RHS block
    /// column `j` (`laswp`).
    Piv,
    /// Forward-substitute the diagonal block: `X(k,j) := L(k,k)⁻¹ X(k,j)`
    /// (unit lower).
    TrsmL,
    /// Forward update of row block `i > k`:
    /// `X(i,j) -= L(i,k) · X(k,j)`.
    GemmL,
    /// Back-substitute the diagonal block: `X(k,j) := U(k,k)⁻¹ X(k,j)`
    /// (non-unit upper).
    TrsmU,
    /// Backward update of row block `i < k`:
    /// `X(i,j) -= U(i,k) · X(k,j)`.
    GemmU,
}

/// One task of the distributed (2D block-cyclic) DAG. The `rank` tag is
/// the owning rank in column-major grid order (`rank = pcol·Pr + prow`,
/// the BLACS "C" order `calu_netsim::Grid` uses); cross-rank data flow is
/// realized as send/recv task pairs whose edges are the wires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DistTask {
    /// What the task does (and which side of a comm pair it is).
    pub kind: DistKind,
    /// Elimination step (block column index, units of `nb`).
    pub k: u32,
    /// Kind-specific index: target block column for
    /// `Swap`/`Trsm`/`USend`/`URecv`/`Gemm`, butterfly leg for `TsluLeg`,
    /// unused (0) otherwise.
    pub j: u32,
    /// Owning rank (column-major grid order).
    pub rank: u32,
}

/// Task kinds of the distributed DAG. Compute kinds run real kernels on
/// the owning rank's block-cyclic tiles; communication kinds carry modeled
/// `α + w·β` costs and stage/consume data across ranks (send/recv pairs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistKind {
    /// TSLU phase 1a: local candidate election on one member of the
    /// panel-owning process column.
    Cand,
    /// One leg of TSLU's butterfly all-reduce of candidate sets along the
    /// process column (`j` = leg index): a pairwise sendrecv plus the
    /// redundant tournament combine.
    TsluLeg,
    /// The whole `PDGETF2` panel of the `PDGETRF` baseline: per column a
    /// scan, a column-combine, a pivot-row exchange, and a rank-1 update —
    /// a serialized picket fence modeled as one task on the diagonal rank
    /// (its body touches every rank of the process column, which the
    /// column-barrier edges order).
    PanelGetf2,
    /// Send half of the swap-list broadcast along the owning process row.
    PivSend,
    /// Recv half of the swap-list broadcast on one non-root rank.
    PivRecv,
    /// Pivot-row exchange: apply panel `k`'s row swaps to block column `j`
    /// across the owning process column (the sequential pairwise
    /// exchanges of the swap sweep, one task per column block).
    Swap,
    /// Send half of the post-swap `W` block broadcast down the process
    /// column (CALU second pass).
    WSend,
    /// CALU second pass on one panel-column member: redundant `W = L₁₁U₁₁`
    /// factorization plus the local `L₂₁ = A₂₁U₁₁⁻¹` solve.
    Second,
    /// Send half of the packed-panel broadcast along the process row (one
    /// per process row — each row carries its own panel rows).
    PanelSend,
    /// Recv half of the packed-panel broadcast on one non-root rank.
    PanelRecv,
    /// `U₁₂` triangular solve for block column `j` on the diagonal
    /// process row.
    Trsm,
    /// Send half of the `U₁₂` broadcast down the process column.
    USend,
    /// Recv half of the `U₁₂` broadcast on one non-diagonal process row.
    URecv,
    /// Local trailing `gemm` of block column `j` on one rank (all its
    /// owned row tiles).
    Gemm,
}

impl DistTask {
    /// `true` for kinds whose cost is (at least partly) a message — the
    /// segments the dual-layer Gantt draws as communication.
    pub fn is_comm(&self) -> bool {
        matches!(
            self.kind,
            DistKind::TsluLeg
                | DistKind::PivSend
                | DistKind::PivRecv
                | DistKind::Swap
                | DistKind::WSend
                | DistKind::PanelSend
                | DistKind::PanelRecv
                | DistKind::USend
                | DistKind::URecv
        )
    }
}

impl Task {
    /// The elimination step this task belongs to.
    pub fn step(&self) -> usize {
        match *self {
            Task::Panel { k }
            | Task::PanelElect { k, .. }
            | Task::PanelReduce { k, .. }
            | Task::PanelFinish { k }
            | Task::PanelApply { k, .. }
            | Task::Swap { k, .. }
            | Task::Trsm { k, .. }
            | Task::Gemm { k, .. } => k,
            Task::Dist(d) => d.k as usize,
            Task::Solve(s) => s.k as usize,
        }
    }

    /// The rank this task's work is attributed to — the trace exporter's
    /// `pid` lane. Distributed tasks carry their owning grid rank;
    /// shared-memory and solve tasks all run in one address space (rank 0).
    pub fn trace_rank(&self) -> u32 {
        match *self {
            Task::Dist(d) => d.rank,
            _ => 0,
        }
    }

    /// Stable kind slug for the trace exporter's `cat` field (Chrome and
    /// Perfetto group and filter events by category).
    pub fn cat(&self) -> &'static str {
        match *self {
            Task::Panel { .. } => "panel",
            Task::PanelElect { .. } => "panel_elect",
            Task::PanelReduce { .. } => "panel_reduce",
            Task::PanelFinish { .. } => "panel_finish",
            Task::PanelApply { .. } => "panel_apply",
            Task::Swap { .. } => "swap",
            Task::Trsm { .. } => "trsm",
            Task::Gemm { .. } => "gemm",
            Task::Dist(d) => match d.kind {
                DistKind::Cand => "cand",
                DistKind::TsluLeg => "tslu_leg",
                DistKind::PanelGetf2 => "panel_getf2",
                DistKind::PivSend => "piv_send",
                DistKind::PivRecv => "piv_recv",
                DistKind::Swap => "swap",
                DistKind::WSend => "w_send",
                DistKind::Second => "second",
                DistKind::PanelSend => "panel_send",
                DistKind::PanelRecv => "panel_recv",
                DistKind::Trsm => "trsm",
                DistKind::USend => "u_send",
                DistKind::URecv => "u_recv",
                DistKind::Gemm => "gemm",
            },
            Task::Solve(s) => match s.kind {
                SolveKind::Piv => "solve_piv",
                SolveKind::TrsmL => "solve_trsm_l",
                SolveKind::GemmL => "solve_gemm_l",
                SolveKind::TrsmU => "solve_trsm_u",
                SolveKind::GemmU => "solve_gemm_u",
            },
        }
    }
}

impl std::fmt::Display for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Task::Panel { k } => write!(f, "Panel({k})"),
            Task::PanelElect { k, ti } => write!(f, "PanelElect({k},{ti})"),
            Task::PanelReduce { k, level, ti, tj } => {
                write!(f, "PanelReduce({k},l{level},{ti}+{tj})")
            }
            Task::PanelFinish { k } => write!(f, "PanelFinish({k})"),
            Task::PanelApply { k, ti } => write!(f, "PanelApply({k},{ti})"),
            Task::Swap { k, j } => write!(f, "Swap({k},{j})"),
            Task::Trsm { k, j } => write!(f, "Trsm({k},{j})"),
            Task::Gemm { k, i, j } => write!(f, "Gemm({k},{i},{j})"),
            Task::Dist(DistTask { kind, k, j, rank }) => {
                write!(f, "{kind:?}({k},{j})@r{rank}")
            }
            Task::Solve(SolveTask { kind, k, i, j }) => match kind {
                SolveKind::Piv => write!(f, "SolvePiv({j})"),
                SolveKind::TrsmL | SolveKind::TrsmU => write!(f, "Solve{kind:?}({k},{j})"),
                SolveKind::GemmL | SolveKind::GemmU => write!(f, "Solve{kind:?}({k},{i},{j})"),
            },
        }
    }
}

/// Block geometry of an `m × n` matrix factored with panel width `nb`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LuShape {
    /// Matrix rows.
    pub m: usize,
    /// Matrix columns.
    pub n: usize,
    /// Panel width (block size).
    pub nb: usize,
}

impl LuShape {
    /// Number of panel steps, `⌈min(m,n)/nb⌉`.
    pub fn steps(&self) -> usize {
        self.m.min(self.n).div_ceil(self.nb)
    }

    /// Number of block columns, `⌈n/nb⌉`.
    pub fn col_blocks(&self) -> usize {
        self.n.div_ceil(self.nb)
    }

    /// Number of block rows, `⌈m/nb⌉`.
    pub fn row_blocks(&self) -> usize {
        self.m.div_ceil(self.nb)
    }

    /// Width of panel `k` (`nb`, except possibly the last step).
    pub fn panel_width(&self, k: usize) -> usize {
        self.nb.min(self.m.min(self.n) - k * self.nb)
    }

    /// Column range of block column `j`.
    pub fn col_range(&self, j: usize) -> std::ops::Range<usize> {
        j * self.nb..self.n.min((j + 1) * self.nb)
    }

    /// Row range of block row `i`.
    pub fn row_range(&self, i: usize) -> std::ops::Range<usize> {
        i * self.nb..self.m.min((i + 1) * self.nb)
    }

    /// The columns a `Swap(k, j)`/`Trsm(k, j)`/`Gemm(k, ·, j)` task
    /// touches: the whole block column for `j ≠ k`, or — when a ragged
    /// final panel leaves its block column partially unfactored — the
    /// remainder right of the panel for `j == k`.
    pub fn update_col_range(&self, k: usize, j: usize) -> std::ops::Range<usize> {
        let r = self.col_range(j);
        if j == k {
            (k * self.nb + self.panel_width(k)).min(r.end)..r.end
        } else {
            r
        }
    }
}

/// Scheduling priority: lexicographically smaller runs first among ready
/// tasks. The encoding is critical-path-first: all work on block column
/// `j` outranks work on columns right of it, so the column feeding the
/// next panel drains before the bulk — the generalization of HPL's
/// look-ahead. Left swaps (pivot fix-up of finished `L` columns) are off
/// the critical path and sort last.
pub type Prio = (u32, u8, u32, u32);

fn priority(shape: &LuShape, t: Task) -> Prio {
    let cb = shape.col_blocks() as u32;
    match t {
        Task::Panel { k } => (k as u32, 0, 0, 0),
        // The resident panel subgraph shares the gathered panel's slot
        // (first among step-k work); within it the reduction spine drains
        // root-ward first: finish, then reduces (deeper level = closer to
        // the root = smaller), then elects, then the L₂₁ applies.
        Task::PanelFinish { k } => (k as u32, 0, 0, 0),
        Task::PanelReduce { k, level, .. } => (k as u32, 0, 1, u32::MAX - level as u32),
        Task::PanelElect { k, ti } => (k as u32, 0, 2, ti as u32),
        Task::PanelApply { k, ti } => (k as u32, 0, 3, ti as u32),
        Task::Swap { k, j } if j >= k => (j as u32, 1, k as u32, 0),
        Task::Trsm { k, j } => (j as u32, 2, k as u32, 0),
        Task::Gemm { k, i, j } => (j as u32, 3, k as u32, i as u32),
        Task::Swap { k, j } => (cb + k as u32, 4, j as u32, 0),
        Task::Dist(d) => dist_priority(cb, d),
        Task::Solve(s) => solve_priority(shape, s),
    }
}

/// Column-drain priorities for the solve DAG: all work on RHS block
/// column `j` outranks columns right of it (so a coalesced batch streams
/// whole solutions out instead of interleaving every column's forward
/// phase), the forward sweep outranks the backward sweep, and within a
/// sweep the diagonal chain (`TrsmL`/`TrsmU`) outranks the bulk updates
/// that hang off it — the same critical-path-first shape as the
/// factorization priorities.
fn solve_priority(shape: &LuShape, s: SolveTask) -> Prio {
    let kb = shape.row_blocks() as u32;
    let SolveTask { kind, k, i, j } = s;
    match kind {
        SolveKind::Piv => (j, 0, 0, 0),
        SolveKind::TrsmL => (j, 1, k, 0),
        SolveKind::GemmL => (j, 1, k, 1 + i),
        SolveKind::TrsmU => (j, 2, kb - 1 - k, 0),
        SolveKind::GemmU => (j, 2, kb - 1 - k, 1 + i),
    }
}

/// Critical-path-first priorities for the distributed task kinds: the
/// panel chain of step `k` (election, reduce legs, second pass, list and
/// panel broadcasts) outranks trailing work, per-column work on block
/// column `j` outranks columns right of it, left pivot fix-ups sort last —
/// the same encoding as the shared-memory DAG, with comm legs slotted into
/// their producing chain.
fn dist_priority(cb: u32, d: DistTask) -> Prio {
    use DistKind::*;
    let DistTask { kind, k, j, rank } = d;
    match kind {
        Cand | PanelGetf2 => (k, 0, 0, rank),
        TsluLeg => (k, 0, 1 + j, rank),
        WSend => (k, 1, 0, rank),
        Second => (k, 1, 1, rank),
        PivSend => (k, 1, 2, rank),
        PivRecv => (k, 1, 3, rank),
        PanelSend => (k, 1, 4, rank),
        PanelRecv => (k, 1, 5, rank),
        Swap if j >= k => (j, 2, k, 0),
        Trsm => (j, 3, k, 0),
        USend => (j, 4, k, 0),
        URecv => (j, 4, k, 1 + rank),
        Gemm => (j, 5, k, rank),
        Swap => (cb + k, 6, j, 0),
    }
}

/// How the shared-memory DAG factors a panel — the knob selecting between
/// the monolithic gathered panel task and the per-tile tournament subgraph.
///
/// Both modes are deterministic; they are *different* deterministic
/// algorithms. `Gathered` partitions the panel into `opts.p` row blocks
/// and is bitwise identical to the sequential `calu_inplace` sweep.
/// `Resident` uses tile-height blocks as tournament leaves (a different
/// but equally deterministic tree), elects candidates per resident tile —
/// no gather/scatter copy of the panel — and forms `L₂₁` tile-parallel,
/// so its factors are bitwise reproducible across executors, lookahead
/// depths, and runs, but not bitwise equal to `Gathered`'s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PanelMode {
    /// One monolithic `Panel(k)` task: gather the tile column into a
    /// contiguous scratch panel, run sequential TSLU, scatter back.
    /// The bitwise reference (identical to `calu_inplace`).
    #[default]
    Gathered,
    /// Per-tile tournament subgraph
    /// `PanelElect → PanelReduce* → PanelFinish → PanelApply*`: candidates
    /// elected on resident tiles, folded up a deterministic binary tree,
    /// `L₂₁` formed tile-parallel in place. No panel gather/scatter.
    Resident,
}

/// Per-level node counts of the resident panel's tournament tree over `t`
/// leaf tiles: `counts[0] == t` leaves, each higher level pairing nodes
/// (`⌈·/2⌉`) until a single root. `counts.len() - 1` is the root level.
/// Empty input (`t == 0`) yields `[0]` — a degenerate tree with no root.
pub fn panel_tree_levels(t: usize) -> Vec<usize> {
    let mut counts = vec![t];
    while *counts.last().expect("non-empty") > 1 {
        let up = counts.last().expect("non-empty").div_ceil(2);
        counts.push(up);
    }
    counts
}

/// Resolves tree node `(level, i)` over `t` leaves to the node whose task
/// actually produces its candidate set: a node with two non-empty children
/// stores its own `reduce_pair` result, while a single-child node is a
/// pass-through that collapses to its lone descendant (ultimately a leaf).
/// Returns the storing node's `(level, i)`.
///
/// Shared between the DAG builder (edge endpoints) and the runtime's
/// candidate-slot store so both sides agree on where every subtree's
/// winners live.
pub fn panel_tree_resolve(t: usize, mut level: usize, mut i: usize) -> (usize, usize) {
    loop {
        if level == 0 {
            return (0, i);
        }
        let right_lo = (2 * i + 1) << (level - 1);
        if right_lo < t {
            return (level, i);
        }
        level -= 1;
        i *= 2;
    }
}

/// The [`Task`] producing tree node `(level, i)`'s candidate set for step
/// `k` over `t` leaf tiles (see [`panel_tree_resolve`]).
fn panel_tree_task(k: usize, t: usize, level: usize, i: usize) -> Task {
    let (l, i) = panel_tree_resolve(t, level, i);
    if l == 0 {
        Task::PanelElect { k, ti: k + i }
    } else {
        Task::PanelReduce { k, level: l, ti: k + (i << l), tj: k + ((2 * i + 1) << (l - 1)) }
    }
}

/// The dependency DAG of one blocked LU factorization — shared-memory
/// ([`LuDag::build`]) or distributed over a 2D block-cyclic grid
/// ([`LuDag::build_dist`]), where tasks are partitioned per rank and
/// cross-rank edges run through send/recv task pairs.
#[derive(Debug, Clone)]
pub struct LuDag {
    shape: LuShape,
    lookahead: usize,
    tasks: Vec<Task>,
    prio: Vec<Prio>,
    succs: Vec<Vec<TaskId>>,
    dep_count: Vec<usize>,
    /// Number of ranks tasks are partitioned over (1 for shared memory).
    pub(crate) ranks: usize,
    /// `(Pr, Pc)` grid of a distributed DAG, `None` for shared memory.
    pub(crate) grid: Option<(usize, usize)>,
}

impl LuDag {
    /// Builds the DAG for an `m × n` factorization with panel width `nb`
    /// and the given panel lookahead depth (`≥ 1`; depths beyond the step
    /// count leave panels unthrottled), in the default
    /// [`PanelMode::Gathered`].
    ///
    /// # Panics
    /// If `nb == 0` or `lookahead == 0`.
    pub fn build(shape: LuShape, lookahead: usize) -> Self {
        Self::build_with(shape, lookahead, PanelMode::Gathered)
    }

    /// [`LuDag::build`] with an explicit [`PanelMode`]. Under
    /// [`PanelMode::Resident`] each `Panel(k)` is replaced by the per-tile
    /// tournament subgraph: one `PanelElect(k, ti)` per resident tile of
    /// the panel (each gated only on *its own tile's* step-`k-1` update,
    /// so elections start as the column drains tile by tile), the
    /// `PanelReduce` binary tree folding candidate sets root-ward,
    /// `PanelFinish(k)` as the panel boundary (trailing and left swaps
    /// hang off it, and the lookahead throttle gates the elects), and one
    /// `PanelApply(k, ti)` per trailing tile feeding that tile row's
    /// `Gemm`s.
    ///
    /// # Panics
    /// If `nb == 0` or `lookahead == 0`.
    pub fn build_with(shape: LuShape, lookahead: usize, mode: PanelMode) -> Self {
        assert!(shape.nb > 0, "panel width nb must be positive");
        assert!(lookahead > 0, "lookahead depth must be at least 1");
        let steps = shape.steps();
        let cb = shape.col_blocks();
        let rb = shape.row_blocks();

        let mut tasks: Vec<Task> = Vec::new();
        let mut id_of = std::collections::HashMap::new();
        let mut by_step: Vec<Vec<TaskId>> = vec![Vec::new(); steps];
        let mut push = |t: Task, tasks: &mut Vec<Task>, by_step: &mut Vec<Vec<TaskId>>| {
            let id = tasks.len();
            tasks.push(t);
            by_step[t.step()].push(id);
            id_of.insert(t, id);
            id
        };

        for k in 0..steps {
            match mode {
                PanelMode::Gathered => {
                    push(Task::Panel { k }, &mut tasks, &mut by_step);
                }
                PanelMode::Resident => {
                    for ti in k..rb {
                        push(Task::PanelElect { k, ti }, &mut tasks, &mut by_step);
                    }
                    let t = rb - k;
                    let counts = panel_tree_levels(t);
                    for (level, &n_nodes) in counts.iter().enumerate().skip(1) {
                        for i in 0..n_nodes {
                            let right_lo = (2 * i + 1) << (level - 1);
                            if right_lo < t {
                                push(
                                    Task::PanelReduce {
                                        k,
                                        level,
                                        ti: k + (i << level),
                                        tj: k + right_lo,
                                    },
                                    &mut tasks,
                                    &mut by_step,
                                );
                            }
                        }
                    }
                    push(Task::PanelFinish { k }, &mut tasks, &mut by_step);
                    for ti in k + 1..rb {
                        push(Task::PanelApply { k, ti }, &mut tasks, &mut by_step);
                    }
                }
            }
            for j in 0..k {
                push(Task::Swap { k, j }, &mut tasks, &mut by_step);
            }
            // Right of the panel: swap, trsm, and (when trailing rows
            // exist) one gemm per trailing block row. Whenever a step has
            // both trailing rows and columns its width is exactly nb, so
            // trailing rows start on the block grid at row (k+1)·nb.
            let jb = shape.panel_width(k);
            if jb < shape.nb && k * shape.nb + jb < shape.n {
                // Ragged final panel in a wide matrix: the rest of the
                // panel's own block column still needs swap + trsm.
                push(Task::Swap { k, j: k }, &mut tasks, &mut by_step);
                push(Task::Trsm { k, j: k }, &mut tasks, &mut by_step);
            }
            let has_rows_below = k * shape.nb + jb < shape.m;
            for j in k + 1..cb {
                push(Task::Swap { k, j }, &mut tasks, &mut by_step);
                push(Task::Trsm { k, j }, &mut tasks, &mut by_step);
                if has_rows_below {
                    debug_assert_eq!(jb, shape.nb, "ragged panels have no trailing block");
                    for i in k + 1..rb {
                        push(Task::Gemm { k, i, j }, &mut tasks, &mut by_step);
                    }
                }
            }
        }

        // Edges as (from, to) pairs; deduped below.
        let id = |t: Task| -> TaskId { *id_of.get(&t).expect("edge endpoint exists") };
        // The task whose completion means "panel k is factored and its
        // pivots published" — what swaps of step k hang off.
        let panel_done = |k: usize| -> Task {
            match mode {
                PanelMode::Gathered => Task::Panel { k },
                PanelMode::Resident => Task::PanelFinish { k },
            }
        };
        let mut edges: Vec<(TaskId, TaskId)> = Vec::new();
        for (tid, &t) in tasks.iter().enumerate() {
            match t {
                Task::Panel { k } => {
                    if k > 0 {
                        // The panel's column must be fully updated through
                        // step k-1.
                        for i in k..rb {
                            edges.push((id(Task::Gemm { k: k - 1, i, j: k }), tid));
                        }
                    }
                    // Lookahead throttle: wait for every task of step
                    // k - lookahead - 1.
                    if k > lookahead {
                        for &p in &by_step[k - lookahead - 1] {
                            edges.push((p, tid));
                        }
                    }
                }
                Task::PanelElect { k, ti } => {
                    // Only this tile's slice of the panel column must be
                    // updated through step k-1 — the per-tile refinement of
                    // the gathered panel's all-tiles gate.
                    if k > 0 {
                        edges.push((id(Task::Gemm { k: k - 1, i: ti, j: k }), tid));
                    }
                    // Lookahead throttle on the subgraph's entry tasks.
                    if k > lookahead {
                        for &p in &by_step[k - lookahead - 1] {
                            edges.push((p, tid));
                        }
                    }
                }
                Task::PanelReduce { k, level, ti, .. } => {
                    // Fold the two child subtrees' candidate producers
                    // (pass-through single-child nodes resolve downward).
                    let t = rb - k;
                    let i = (ti - k) >> level;
                    edges.push((id(panel_tree_task(k, t, level - 1, 2 * i)), tid));
                    edges.push((id(panel_tree_task(k, t, level - 1, 2 * i + 1)), tid));
                }
                Task::PanelFinish { k } => {
                    // The tournament root; every elect reaches it through
                    // the reduce tree, so the cross-tile winner swaps and
                    // the diagonal-tile factorization are exclusive.
                    let t = rb - k;
                    let top = panel_tree_levels(t).len() - 1;
                    edges.push((id(panel_tree_task(k, t, top, 0)), tid));
                }
                Task::PanelApply { k, .. } => {
                    // Needs the published pivots, the swapped panel column,
                    // and the finished U₁₁ diagonal.
                    edges.push((id(Task::PanelFinish { k }), tid));
                }
                Task::Swap { k, j } if j >= k => {
                    edges.push((id(panel_done(k)), tid));
                    if k > 0 {
                        // Column j fully updated through step k-1 first.
                        for i in k..rb {
                            edges.push((id(Task::Gemm { k: k - 1, i, j }), tid));
                        }
                    }
                }
                Task::Swap { k, j } => {
                    // j < k: pivot fix-up of a finished L column.
                    edges.push((id(panel_done(k)), tid));
                    if j < k - 1 {
                        // Swaps on the same column do not commute.
                        edges.push((id(Task::Swap { k: k - 1, j }), tid));
                    } else {
                        // First left-swap of column j = k-1: anti-dependence
                        // on every reader of the unswapped L₂₁ of step k-1
                        // (and, resident mode, on its per-tile writers).
                        for &gid in &by_step[k - 1] {
                            if matches!(tasks[gid], Task::Gemm { .. } | Task::PanelApply { .. }) {
                                edges.push((gid, tid));
                            }
                        }
                    }
                }
                Task::Trsm { k, j } => {
                    // The swap wrote the same rows; the panel root is
                    // covered transitively (Swap ← Panel/PanelFinish).
                    edges.push((id(Task::Swap { k, j }), tid));
                }
                Task::Gemm { k, i, j } => {
                    // Trsm(k,j) produced U₁₂; Swap(k,j) (last writer of the
                    // tile) is transitive. L₂₁ of tile row i comes from the
                    // panel root (transitive) in gathered mode, or from
                    // this tile's PanelApply in resident mode.
                    edges.push((id(Task::Trsm { k, j }), tid));
                    if mode == PanelMode::Resident {
                        edges.push((id(Task::PanelApply { k, ti: i }), tid));
                    }
                }
                Task::Dist(_) | Task::Solve(_) => {
                    unreachable!("factorization builder emits no dist/solve tasks")
                }
            }
        }
        Self::from_parts(shape, lookahead, tasks, edges, 1, None)
    }

    /// Finishes construction from a raw task/edge list (shared by the
    /// distributed builder): dedupes edges, computes successor lists,
    /// predecessor counts, and priorities.
    pub(crate) fn from_parts(
        shape: LuShape,
        lookahead: usize,
        tasks: Vec<Task>,
        mut edges: Vec<(TaskId, TaskId)>,
        ranks: usize,
        grid: Option<(usize, usize)>,
    ) -> Self {
        edges.sort_unstable();
        edges.dedup();
        let mut succs: Vec<Vec<TaskId>> = vec![Vec::new(); tasks.len()];
        let mut dep_count = vec![0usize; tasks.len()];
        for (from, to) in edges {
            debug_assert!(from != to, "self edge on {}", tasks[from]);
            succs[from].push(to);
            dep_count[to] += 1;
        }
        let prio = tasks.iter().map(|&t| priority(&shape, t)).collect();
        LuDag { shape, lookahead, tasks, prio, succs, dep_count, ranks, grid }
    }

    /// Number of ranks the tasks are partitioned over (1 for a
    /// shared-memory DAG).
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// `(Pr, Pc)` process grid of a distributed DAG (`None` for shared
    /// memory).
    pub fn grid(&self) -> Option<(usize, usize)> {
        self.grid
    }

    /// Owning rank of a task (column-major grid order; 0 for every
    /// shared-memory task).
    pub fn owner(&self, id: TaskId) -> usize {
        match self.tasks[id] {
            Task::Dist(d) => d.rank as usize,
            _ => 0,
        }
    }

    /// The block geometry this DAG was built for.
    pub fn shape(&self) -> &LuShape {
        &self.shape
    }

    /// The lookahead depth the panel throttle was built with.
    pub fn lookahead(&self) -> usize {
        self.lookahead
    }

    /// All tasks; a [`TaskId`] indexes this slice.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when the factorization is empty (`min(m,n) == 0`).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Scheduling priority of a task (smaller runs first).
    pub fn priority(&self, id: TaskId) -> Prio {
        self.prio[id]
    }

    /// Successor tasks unblocked (in part) by `id`'s completion.
    pub fn successors(&self, id: TaskId) -> &[TaskId] {
        &self.succs[id]
    }

    /// Per-task predecessor counts (cloned as the executors' countdown).
    pub fn dep_counts(&self) -> &[usize] {
        &self.dep_count
    }

    /// The deterministic order the serial executor replays: a topological
    /// sort that always picks the highest-priority ready task.
    pub fn serial_schedule(&self) -> Vec<TaskId> {
        let mut deps = self.dep_count.clone();
        let mut heap = std::collections::BinaryHeap::new();
        for (id, &d) in deps.iter().enumerate() {
            if d == 0 {
                heap.push(std::cmp::Reverse((self.prio[id], id)));
            }
        }
        let mut order = Vec::with_capacity(self.len());
        while let Some(std::cmp::Reverse((_, id))) = heap.pop() {
            order.push(id);
            for &s in &self.succs[id] {
                deps[s] -= 1;
                if deps[s] == 0 {
                    heap.push(std::cmp::Reverse((self.prio[s], s)));
                }
            }
        }
        assert_eq!(order.len(), self.len(), "DAG must be acyclic");
        order
    }

    /// Longest path through the DAG under a per-task cost model — the
    /// makespan of an infinitely parallel machine.
    pub fn critical_path(&self, cost: impl Fn(Task) -> f64) -> f64 {
        let order = self.serial_schedule();
        let mut finish = vec![0.0_f64; self.len()];
        let mut best = 0.0_f64;
        for id in order {
            let f = finish[id] + cost(self.tasks[id]);
            best = best.max(f);
            for &s in &self.succs[id] {
                if f > finish[s] {
                    finish[s] = f;
                }
            }
        }
        best
    }

    /// Sum of all task costs — the makespan of a one-worker machine.
    pub fn total_cost(&self, cost: impl Fn(Task) -> f64) -> f64 {
        self.tasks.iter().map(|&t| cost(t)).sum()
    }
}

/// Which storage layout the matrix behind a DAG's tasks uses — the knob
/// of the cache-traffic model ([`modeled_cache_traffic`] /
/// [`modeled_time_layout`]).
///
/// Cache misses are memory-hierarchy communication: a flat column-major
/// matrix makes every `Gemm(k,i,j)` operand a strided block (leading
/// dimension `m`), while tile-major storage keeps each operand one
/// contiguous tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileLocality {
    /// Flat column-major storage: task operands are strided sub-blocks
    /// with leading dimension `m`.
    Flat,
    /// Tile-major storage: `Trsm`/`Gemm` operands are contiguous tiles;
    /// the panel pays an explicit gather/scatter copy around its kernel.
    TileMajor,
}

/// Modeled bytes moved between memory and cache by one task's operand
/// sweeps, at 64-byte cache-line granularity, under the given storage
/// layout and a [`MachineConfig`]'s cache capacity.
///
/// First-order model: each operand is swept once per read and once per
/// write. A contiguous operand touches `ceil(bytes / 64)` lines. When the
/// whole factorization's footprint (`m·n·8` bytes) exceeds
/// [`MachineConfig::cache_bytes`], operands cannot persist between tasks
/// and every flat strided operand re-streams with whole lines per column
/// — `ceil(rows·8 / 64) + 1`, the partial-line waste at both ends of
/// every column. On top of that, a flat leading dimension whose byte
/// stride is a multiple of 4 KiB (the classic power-of-two-`ld`
/// pathology — exactly the 512/1024/2048 benchmark sizes) maps all
/// columns of an operand onto the same cache sets, so a spilled strided
/// operand also cannot stay resident *within* a task between kernel
/// passes: its sweeps are charged twice. A matrix that fits in cache
/// streams once either way, so both layouts charge contiguous bytes.
/// Tile-major `Panel` tasks charge one extra read+write pair: the
/// explicit gather/scatter copy into the contiguous scratch panel. Row
/// swaps touch one line per element in either layout (rows are
/// orthogonal to column-major storage) and cost the same.
///
/// The net effect matches the tiled-algorithms literature: tile-major
/// wins on the `gemm`-dominated trailing updates and gives a little back
/// on panels — the modeled difference `layout_calu` records next to its
/// measured times.
pub fn modeled_cache_traffic(
    shape: &LuShape,
    task: Task,
    mch: &MachineConfig,
    locality: TileLocality,
) -> f64 {
    const LINE: f64 = 64.0;
    const B: usize = 8; // modeled element bytes (the f64 calibration)
    let spills = ((shape.m * shape.n * B) as f64) > mch.cache_bytes;
    let aliased = spills && (shape.m * B).is_multiple_of(4096);
    let block_bytes = |r: usize, c: usize, sweeps: f64| -> f64 {
        if r == 0 || c == 0 {
            return 0.0;
        }
        let contiguous = ((r * c * B) as f64 / LINE).ceil();
        let lines = match locality {
            TileLocality::TileMajor => contiguous,
            TileLocality::Flat if !spills => contiguous,
            TileLocality::Flat => {
                let strided = c as f64 * (((r * B) as f64 / LINE).ceil() + 1.0);
                if aliased {
                    2.0 * strided
                } else {
                    strided
                }
            }
        };
        sweeps * lines * LINE
    };
    match task {
        Task::Panel { k } => {
            let rows = shape.m - k * shape.nb;
            let jb = shape.panel_width(k);
            let kernel = block_bytes(rows, jb, 2.0);
            match locality {
                TileLocality::TileMajor => kernel + block_bytes(rows, jb, 2.0),
                TileLocality::Flat => kernel,
            }
        }
        // The resident panel subgraph charges its *main-matrix* operand
        // sweeps only, at the same idealization level as the gathered
        // kernel above (which charges 2 panel sweeps for the whole TSLU,
        // its internal election copies and tournament folds uncharged as
        // cache-resident scratch): the elect reads its tile once, the
        // finish read+writes the diagonal tile, the apply read+writes its
        // tile in place. jb-scale scratch — election copies, candidate
        // payloads folded by the reduces, the U₁₁ block every apply
        // re-reads — stays uncharged on both sides. Net: 3 panel sweeps
        // instead of the gathered tile panel's 4 — the eliminated
        // gather/scatter copy, minus the cross-task re-read of each tile.
        Task::PanelElect { k, ti } => {
            block_bytes(shape.row_range(ti).len(), shape.panel_width(k), 1.0)
        }
        Task::PanelReduce { .. } => 0.0,
        Task::PanelFinish { k } => block_bytes(shape.row_range(k).len(), shape.panel_width(k), 2.0),
        Task::PanelApply { k, ti } => {
            block_bytes(shape.row_range(ti).len(), shape.panel_width(k), 2.0)
        }
        Task::Swap { k, j } => {
            let jb = shape.panel_width(k);
            let w = shape.update_col_range(k, j).len();
            2.0 * (jb * w) as f64 * LINE
        }
        Task::Trsm { k, j } => {
            let jb = shape.panel_width(k);
            let w = shape.update_col_range(k, j).len();
            block_bytes(jb, jb, 1.0) + block_bytes(jb, w, 2.0)
        }
        Task::Gemm { k, i, j } => {
            let jb = shape.panel_width(k);
            let h = shape.row_range(i).len();
            let w = shape.col_range(j).len();
            block_bytes(h, jb, 1.0) + block_bytes(jb, w, 1.0) + block_bytes(h, w, 2.0)
        }
        // Distributed tasks are costed by `dist::DistCostModel` (their
        // operands live in per-rank tile storage, never flat); solve-phase
        // tasks are O(n²) work the serve bench measures rather than models.
        Task::Dist(_) | Task::Solve(_) => 0.0,
    }
}

/// [`modeled_time`] plus the memory time of [`modeled_cache_traffic`],
/// streamed at the machine's BLAS-2 rate (γ₂ is calibrated as 2 flops per
/// 16 bytes streamed, i.e. 8 bytes per flop-second — the memory-bound
/// face of the same [`MachineConfig`]).
pub fn modeled_time_layout(
    shape: &LuShape,
    task: Task,
    mch: &MachineConfig,
    locality: TileLocality,
) -> f64 {
    let stream_bytes_per_s = 8.0 / mch.gamma2;
    modeled_time(shape, task, mch)
        + modeled_cache_traffic(shape, task, mch, locality) / stream_bytes_per_s
}

/// Modeled execution time of one task under a [`MachineConfig`]'s γ-class
/// kernel rates (the same model `calu-netsim` charges simulated ranks).
/// The panel is costed as one unpivoted LU of the full panel height plus a
/// `getf2` sweep for the tournament's candidate elections.
pub fn modeled_time(shape: &LuShape, task: Task, mch: &MachineConfig) -> f64 {
    match task {
        Task::Panel { k } => {
            let rows = shape.m - k * shape.nb;
            let jb = shape.panel_width(k);
            mch.t_getf2(rows, jb) + mch.t_lu_nopiv(rows, jb)
        }
        // Resident panel subgraph: the monolithic panel cost split across
        // its tasks — per-tile elections, jb-scale tree folds, the
        // diagonal-tile finish, and per-tile L₂₁ formation (triangular
        // solve flops: jb²·h).
        Task::PanelElect { k, ti } => mch.t_getf2(shape.row_range(ti).len(), shape.panel_width(k)),
        Task::PanelReduce { k, .. } => {
            let jb = shape.panel_width(k);
            mch.t_getf2(2 * jb, jb)
        }
        Task::PanelFinish { k } => {
            let jb = shape.panel_width(k);
            mch.t_laswp(jb, jb) + mch.t_lu_nopiv(shape.row_range(k).len(), jb)
        }
        Task::PanelApply { k, ti } => {
            mch.t_trsm_left(shape.panel_width(k), shape.row_range(ti).len())
        }
        Task::Swap { k, j } => {
            let jb = shape.panel_width(k);
            mch.t_laswp(jb, shape.update_col_range(k, j).len())
        }
        Task::Trsm { k, j } => {
            mch.t_trsm_left(shape.panel_width(k), shape.update_col_range(k, j).len())
        }
        Task::Gemm { k, i, j } => {
            mch.t_gemm(shape.row_range(i).len(), shape.col_range(j).len(), shape.panel_width(k))
        }
        // Distributed tasks are costed by `dist::DistCostModel` (compute
        // plus α/β message terms); solve-phase tasks are measured by the
        // serve bench, not modeled.
        Task::Dist(_) | Task::Solve(_) => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dag(m: usize, n: usize, nb: usize, d: usize) -> LuDag {
        LuDag::build(LuShape { m, n, nb }, d)
    }

    #[test]
    fn counts_match_closed_form_square() {
        // 4 block columns, square: per step k < 3 there are (cb-1-k)
        // right-swaps/trsm and (rb-1-k)(cb-1-k) gemms, plus k left swaps.
        let d = dag(128, 128, 32, 1);
        let (mut panels, mut swaps, mut trsms, mut gemms) = (0, 0, 0, 0);
        for t in d.tasks() {
            match t {
                Task::Panel { .. } => panels += 1,
                Task::Swap { .. } => swaps += 1,
                Task::Trsm { .. } => trsms += 1,
                Task::Gemm { .. } => gemms += 1,
                Task::PanelElect { .. }
                | Task::PanelReduce { .. }
                | Task::PanelFinish { .. }
                | Task::PanelApply { .. }
                | Task::Dist(_)
                | Task::Solve(_) => {
                    unreachable!("gathered factorization DAGs emit no resident/dist/solve tasks")
                }
            }
        }
        assert_eq!(panels, 4);
        assert_eq!(trsms, 3 + 2 + 1);
        assert_eq!(swaps, (3 + 2 + 1) + (1 + 2 + 3)); // right + left
        assert_eq!(gemms, 9 + 4 + 1);
    }

    #[test]
    fn wide_matrix_has_final_step_trsm_but_no_gemm() {
        let d = dag(64, 128, 32, 1);
        // Step 1 is the last (kn = 64): its panel bottoms out at row 64,
        // so columns 2..4 still get swap+trsm but no gemm.
        assert!(d.tasks().iter().any(|t| matches!(t, Task::Trsm { k: 1, j: 2 })));
        assert!(d.tasks().iter().any(|t| matches!(t, Task::Trsm { k: 1, j: 3 })));
        assert!(!d.tasks().iter().any(|t| matches!(t, Task::Gemm { k: 1, .. })));
    }

    #[test]
    fn ragged_wide_matrix_updates_the_panel_block_remainder() {
        // m=60, n=100, nb=16: final panel (k=3) is 12 wide; columns 60..64
        // of block column 3 still need swap + trsm at step 3.
        let d = dag(60, 100, 16, 1);
        assert!(d.tasks().iter().any(|t| matches!(t, Task::Swap { k: 3, j: 3 })));
        assert!(d.tasks().iter().any(|t| matches!(t, Task::Trsm { k: 3, j: 3 })));
        assert_eq!(d.shape().update_col_range(3, 3), 60..64);
        assert_eq!(d.shape().update_col_range(3, 4), 64..80);
        // Steps with full-width panels have no remainder tasks.
        assert!(!d.tasks().iter().any(|t| matches!(t, Task::Swap { k: 0, j: 0 })));
    }

    #[test]
    fn tall_matrix_final_ragged_panel_has_no_trailing_tasks() {
        let d = dag(100, 40, 16, 2);
        // steps = ceil(40/16) = 3; final panel is 8 wide, no columns right.
        assert_eq!(d.shape().steps(), 3);
        assert_eq!(d.shape().panel_width(2), 8);
        assert!(!d.tasks().iter().any(|t| matches!(t, Task::Trsm { k: 2, .. })));
        assert!(!d.tasks().iter().any(|t| matches!(t, Task::Gemm { k: 2, .. })));
    }

    #[test]
    fn serial_schedule_is_topological_and_complete() {
        for &(m, n, nb, d) in
            &[(96, 96, 16, 1), (96, 96, 16, 3), (130, 70, 32, 2), (70, 130, 32, 9)]
        {
            let g = dag(m, n, nb, d);
            let order = g.serial_schedule();
            assert_eq!(order.len(), g.len());
            let mut pos = vec![0usize; g.len()];
            for (p, &id) in order.iter().enumerate() {
                pos[id] = p;
            }
            for id in 0..g.len() {
                for &s in g.successors(id) {
                    assert!(pos[id] < pos[s], "{} must precede {}", g.tasks()[id], g.tasks()[s]);
                }
            }
        }
    }

    #[test]
    fn lookahead_throttle_orders_panels_behind_old_gemms() {
        // With depth 1, Panel(3) must come after every task of step 1 in
        // any topological order; with a huge depth that edge disappears.
        let g1 = dag(160, 160, 32, 1);
        let p3 = g1.tasks().iter().position(|t| matches!(t, Task::Panel { k: 3 })).unwrap();
        let has_edge_from_step1 =
            (0..g1.len()).any(|id| g1.tasks()[id].step() == 1 && g1.successors(id).contains(&p3));
        assert!(has_edge_from_step1, "depth-1 throttle edge missing");

        let g9 = dag(160, 160, 32, 9);
        let p3 = g9.tasks().iter().position(|t| matches!(t, Task::Panel { k: 3 })).unwrap();
        let throttled = (0..g9.len()).any(|id| {
            matches!(g9.tasks()[id], Task::Gemm { k: 1, .. }) && g9.successors(id).contains(&p3)
        });
        assert!(!throttled, "deep lookahead must not throttle Panel(3) on step-1 gemms");
    }

    #[test]
    fn deeper_lookahead_shortens_the_critical_path() {
        let shape = LuShape { m: 1024, n: 1024, nb: 64 };
        let mch = MachineConfig::power5();
        let cp = |d: usize| LuDag::build(shape, d).critical_path(|t| modeled_time(&shape, t, &mch));
        let (c1, c2, c4) = (cp(1), cp(2), cp(4));
        assert!(c2 <= c1 + 1e-12, "depth 2 ({c2}) must not exceed depth 1 ({c1})");
        assert!(c4 <= c2 + 1e-12);
        // And the DAG exposes real parallelism against one worker.
        let g = LuDag::build(shape, 2);
        let total = g.total_cost(|t| modeled_time(&shape, t, &mch));
        assert!(total / c2 > 2.0, "modeled parallelism {}", total / c2);
    }

    #[test]
    fn tile_major_traffic_beats_flat_on_updates_and_pays_on_panels() {
        // 1024^2 doubles (8 MB) spill the XT4's 2 MB cache.
        let shape = LuShape { m: 1024, n: 1024, nb: 64 };
        let mch = MachineConfig::xt4();
        let gemm = Task::Gemm { k: 0, i: 5, j: 7 };
        let flat = modeled_cache_traffic(&shape, gemm, &mch, TileLocality::Flat);
        let tiled = modeled_cache_traffic(&shape, gemm, &mch, TileLocality::TileMajor);
        assert!(tiled < flat, "tile gemm traffic {tiled} must beat flat {flat}");
        // Exact useful bytes for the tile gemm: A + B read once, C
        // read+write, all contiguous.
        assert_eq!(tiled, (4 * 64 * 64 * 8) as f64);

        let panel = Task::Panel { k: 0 };
        let p_tiled = modeled_cache_traffic(&shape, panel, &mch, TileLocality::TileMajor);
        // The tile panel's gather/scatter copy doubles its contiguous
        // kernel sweep (2 extra sweeps of m x nb doubles).
        assert_eq!(p_tiled, (4 * 1024 * 64 * 8) as f64, "gather/scatter copy must be charged");

        // Whole-DAG traffic is gemm-dominated, so tile-major wins net.
        let dag = LuDag::build(shape, 1);
        let total = |loc| -> f64 {
            dag.tasks().iter().map(|&t| modeled_cache_traffic(&shape, t, &mch, loc)).sum()
        };
        assert!(
            total(TileLocality::TileMajor) < total(TileLocality::Flat),
            "net modeled traffic must favor the tile layout"
        );
        // And the layout-aware time model orders the same way while never
        // undercutting the pure compute model.
        let t = |loc| -> f64 {
            dag.tasks().iter().map(|&t| modeled_time_layout(&shape, t, &mch, loc)).sum()
        };
        let compute: f64 = dag.tasks().iter().map(|&t| modeled_time(&shape, t, &mch)).sum();
        assert!(t(TileLocality::TileMajor) < t(TileLocality::Flat));
        assert!(t(TileLocality::TileMajor) > compute);
    }

    #[test]
    fn cache_resident_flat_blocks_are_not_penalized() {
        // A matrix whose whole strided span fits in cache streams like a
        // contiguous one: no layout difference on Trsm/Gemm operands.
        let shape = LuShape { m: 64, n: 64, nb: 16 };
        let mch = MachineConfig::power5(); // 16 MB cache >> 32 KB matrix
        for t in LuDag::build(shape, 1).tasks() {
            if matches!(t, Task::Trsm { .. } | Task::Gemm { .. }) {
                assert_eq!(
                    modeled_cache_traffic(&shape, *t, &mch, TileLocality::Flat),
                    modeled_cache_traffic(&shape, *t, &mch, TileLocality::TileMajor),
                    "{t}"
                );
            }
        }
    }

    #[test]
    fn first_left_swap_waits_for_all_readers_of_l() {
        // Swap(1, 0) must depend on every Gemm(0, ·, ·).
        let g = dag(96, 96, 32, 1);
        let target = g.tasks().iter().position(|t| matches!(t, Task::Swap { k: 1, j: 0 })).unwrap();
        for id in 0..g.len() {
            if matches!(g.tasks()[id], Task::Gemm { k: 0, .. }) {
                assert!(
                    g.successors(id).contains(&target),
                    "{} must precede Swap(1,0)",
                    g.tasks()[id]
                );
            }
        }
    }

    fn rdag(m: usize, n: usize, nb: usize, d: usize) -> LuDag {
        LuDag::build_with(LuShape { m, n, nb }, d, PanelMode::Resident)
    }

    #[test]
    fn resident_counts_match_closed_form_square() {
        // 4x4 blocks: per step k there are t = 4-k elect leaves, t-1
        // reduces (any binary tree over t leaves folds t-1 pairs), one
        // finish, and 4-k-1 applies; swaps/trsms/gemms are unchanged.
        let d = rdag(128, 128, 32, 1);
        let (mut elects, mut reduces, mut finishes, mut applies) = (0, 0, 0, 0);
        let (mut swaps, mut trsms, mut gemms) = (0, 0, 0);
        for t in d.tasks() {
            match t {
                Task::PanelElect { .. } => elects += 1,
                Task::PanelReduce { .. } => reduces += 1,
                Task::PanelFinish { .. } => finishes += 1,
                Task::PanelApply { .. } => applies += 1,
                Task::Swap { .. } => swaps += 1,
                Task::Trsm { .. } => trsms += 1,
                Task::Gemm { .. } => gemms += 1,
                other => unreachable!("unexpected {other} in a resident DAG"),
            }
        }
        assert_eq!(elects, 4 + 3 + 2 + 1);
        assert_eq!(reduces, 3 + 2 + 1);
        assert_eq!(finishes, 4);
        assert_eq!(applies, 3 + 2 + 1);
        // Trailing structure identical to the gathered DAG.
        assert_eq!(trsms, 3 + 2 + 1);
        assert_eq!(swaps, (3 + 2 + 1) + (1 + 2 + 3));
        assert_eq!(gemms, 9 + 4 + 1);
    }

    #[test]
    fn resident_tree_edges_fold_candidates_to_the_finish() {
        // 5 leaf tiles at step 0: levels [5, 3, 2, 1]. Node (1,2) is a
        // pass-through (leaf 4 has no partner), so the level-2 reduce
        // folds (1,0)'s winner with leaf 4 directly.
        let g = rdag(5 * 32, 4 * 32, 32, 1);
        let find = |t: Task| g.tasks().iter().position(|&x| x == t).unwrap();
        let r10 = find(Task::PanelReduce { k: 0, level: 1, ti: 0, tj: 1 });
        let r11 = find(Task::PanelReduce { k: 0, level: 1, ti: 2, tj: 3 });
        let r20 = find(Task::PanelReduce { k: 0, level: 2, ti: 0, tj: 2 });
        let r30 = find(Task::PanelReduce { k: 0, level: 3, ti: 0, tj: 4 });
        let fin = find(Task::PanelFinish { k: 0 });
        assert!(g.successors(r10).contains(&r20));
        assert!(g.successors(r11).contains(&r20));
        assert!(g.successors(r20).contains(&r30));
        assert!(g.successors(find(Task::PanelElect { k: 0, ti: 4 })).contains(&r30));
        assert!(g.successors(r30).contains(&fin));
        // Every elect reaches the finish transitively; leaves 0..4 feed
        // their level-1 parents (or the root, for the odd leaf).
        assert!(g.successors(find(Task::PanelElect { k: 0, ti: 0 })).contains(&r10));
        assert!(g.successors(find(Task::PanelElect { k: 0, ti: 3 })).contains(&r11));
        // Applies hang off the finish and feed their tile row's gemms.
        let a2 = find(Task::PanelApply { k: 0, ti: 2 });
        assert!(g.successors(fin).contains(&a2));
        assert!(g.successors(a2).contains(&find(Task::Gemm { k: 0, i: 2, j: 1 })));
    }

    #[test]
    fn resident_elects_gate_per_tile_and_throttle_like_panels() {
        let g = rdag(160, 160, 32, 1);
        let find = |t: Task| g.tasks().iter().position(|&x| x == t).unwrap();
        // Per-tile refinement: Elect(1, ti) waits on Gemm(0, ti, 1) only.
        let e13 = find(Task::PanelElect { k: 1, ti: 3 });
        assert!(g.successors(find(Task::Gemm { k: 0, i: 3, j: 1 })).contains(&e13));
        assert!(!g.successors(find(Task::Gemm { k: 0, i: 2, j: 1 })).contains(&e13));
        // Depth-1 throttle: step-1 tasks gate the elects of step 3.
        let e3 = find(Task::PanelElect { k: 3, ti: 4 });
        let throttled =
            (0..g.len()).any(|id| g.tasks()[id].step() == 1 && g.successors(id).contains(&e3));
        assert!(throttled, "depth-1 throttle edge missing on resident elect");
        // Finish is the panel boundary: the trailing swap hangs off it.
        let fin = find(Task::PanelFinish { k: 1 });
        assert!(g.successors(fin).contains(&find(Task::Swap { k: 1, j: 2 })));
        assert!(g.successors(fin).contains(&find(Task::Swap { k: 1, j: 0 })));
    }

    #[test]
    fn resident_first_left_swap_waits_for_applies_too() {
        let g = rdag(96, 96, 32, 1);
        let target = g.tasks().iter().position(|t| matches!(t, Task::Swap { k: 1, j: 0 })).unwrap();
        for id in 0..g.len() {
            if matches!(g.tasks()[id], Task::Gemm { k: 0, .. } | Task::PanelApply { k: 0, .. }) {
                assert!(
                    g.successors(id).contains(&target),
                    "{} must precede Swap(1,0)",
                    g.tasks()[id]
                );
            }
        }
    }

    #[test]
    fn resident_schedule_is_topological_on_ragged_shapes() {
        for &(m, n, nb, d) in &[
            (96, 96, 16, 1),
            (96, 96, 16, 3),
            (130, 70, 32, 2),
            (70, 130, 32, 9),
            (100, 60, 16, 2),
        ] {
            let g = LuDag::build_with(LuShape { m, n, nb }, d, PanelMode::Resident);
            let order = g.serial_schedule();
            assert_eq!(order.len(), g.len());
            let mut pos = vec![0usize; g.len()];
            for (p, &id) in order.iter().enumerate() {
                pos[id] = p;
            }
            for id in 0..g.len() {
                for &s in g.successors(id) {
                    assert!(pos[id] < pos[s], "{} must precede {}", g.tasks()[id], g.tasks()[s]);
                }
            }
        }
    }

    #[test]
    fn resident_panel_charges_no_gather_scatter_traffic() {
        // Same spilled TileMajor setup as the gathered test above: the
        // gathered panel pays a doubled sweep; the resident subgraph's
        // total panel-step traffic stays strictly below it.
        let shape = LuShape { m: 1024, n: 1024, nb: 64 };
        let mch = MachineConfig::xt4();
        let gathered =
            modeled_cache_traffic(&shape, Task::Panel { k: 0 }, &mch, TileLocality::TileMajor);
        let g = LuDag::build_with(shape, 1, PanelMode::Resident);
        let resident: f64 = g
            .tasks()
            .iter()
            .filter(|t| {
                t.step() == 0
                    && matches!(
                        t,
                        Task::PanelElect { .. }
                            | Task::PanelReduce { .. }
                            | Task::PanelFinish { .. }
                            | Task::PanelApply { .. }
                    )
            })
            .map(|&t| modeled_cache_traffic(&shape, t, &mch, TileLocality::TileMajor))
            .sum();
        assert!(
            resident < gathered,
            "resident panel traffic {resident} must beat gathered {gathered}"
        );
        // And the resident critical path is shorter: elections fold in
        // log(t) tree depth instead of one serial full-height panel.
        let cp = |mode: PanelMode| {
            LuDag::build_with(shape, 2, mode).critical_path(|t| modeled_time(&shape, t, &mch))
        };
        assert!(cp(PanelMode::Resident) < cp(PanelMode::Gathered));
    }

    #[test]
    fn resident_single_tile_panel_degenerates_to_elect_finish() {
        let g = rdag(40, 40, 64, 1);
        assert_eq!(g.len(), 2);
        assert!(matches!(g.tasks()[0], Task::PanelElect { k: 0, ti: 0 }));
        assert!(matches!(g.tasks()[1], Task::PanelFinish { k: 0 }));
        assert!(g.successors(0).contains(&1));
    }

    #[test]
    fn panel_tree_helpers_agree_on_pass_throughs() {
        assert_eq!(panel_tree_levels(1), vec![1]);
        assert_eq!(panel_tree_levels(5), vec![5, 3, 2, 1]);
        assert_eq!(panel_tree_levels(0), vec![0]);
        // Node (1,2) over 5 leaves has only leaf 4 → resolves to the leaf.
        assert_eq!(panel_tree_resolve(5, 1, 2), (0, 4));
        // Node (2,1) covers leaves {4} only → same leaf.
        assert_eq!(panel_tree_resolve(5, 2, 1), (0, 4));
        // Two-child nodes store themselves.
        assert_eq!(panel_tree_resolve(5, 1, 0), (1, 0));
        assert_eq!(panel_tree_resolve(5, 3, 0), (3, 0));
    }

    #[test]
    fn empty_and_single_panel_shapes() {
        let g = dag(40, 40, 64, 1);
        assert_eq!(g.len(), 1, "single panel, nothing else");
        assert!(matches!(g.tasks()[0], Task::Panel { k: 0 }));
        let e = LuDag::build(LuShape { m: 0, n: 16, nb: 8 }, 1);
        assert!(e.is_empty());
    }
}
