//! Property-based tests on the simulator: determinism, clock sanity,
//! collective correctness over arbitrary group sizes and roots, and the
//! equivalence of charged rounds with explicitly simulated loops.

use calu_netsim::collectives::ceil_log2;
use calu_netsim::{run_sim, Group, Link, MachineConfig, Payload};
use proptest::prelude::*;

fn world(cm: &calu_netsim::SimComm) -> Group {
    Group::new((0..cm.size()).collect(), cm.rank(), Link::Col, 5_000_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_bcast_any_size_any_root(p in 1usize..12, root_sel in 0usize..12) {
        let root = root_sel % p;
        let (_r, results) = run_sim(p, MachineConfig::power5(), move |cm| {
            let g = world(cm);
            let mine = if g.my_index() == root {
                Payload::Data(vec![root as f64 * 10.0 + 1.0])
            } else {
                Payload::Empty
            };
            g.bcast(cm, root, mine, 1).into_data()[0]
        });
        for (rank, v) in results.into_iter().enumerate() {
            prop_assert_eq!(v, root as f64 * 10.0 + 1.0, "rank {}", rank);
        }
    }

    #[test]
    fn prop_allreduce_sum_any_size(p in 1usize..12) {
        let (_r, results) = run_sim(p, MachineConfig::xt4(), |cm| {
            let g = world(cm);
            let mine = Payload::Data(vec![(cm.rank() + 1) as f64]);
            g.allreduce(cm, mine, 1, |_cm, a, b| {
                Payload::Data(vec![a.into_data()[0] + b.into_data()[0]])
            })
            .into_data()[0]
        });
        let want = (p * (p + 1) / 2) as f64;
        for v in results {
            prop_assert_eq!(v, want);
        }
    }

    #[test]
    fn prop_reduce_root_gets_sum(p in 1usize..12) {
        let (_r, results) = run_sim(p, MachineConfig::power5(), |cm| {
            let g = world(cm);
            let mine = Payload::Data(vec![(cm.rank() * cm.rank()) as f64]);
            g.reduce(cm, mine, 1, |_cm, a, b| {
                Payload::Data(vec![a.into_data()[0] + b.into_data()[0]])
            })
            .map(|pl| pl.into_data()[0])
        });
        let want: f64 = (0..p).map(|r| (r * r) as f64).sum();
        prop_assert_eq!(results[0], Some(want));
        for v in &results[1..] {
            prop_assert_eq!(*v, None);
        }
    }

    #[test]
    fn prop_gather_scatter_round_trip(p in 1usize..10) {
        // scatter(gather(x)) == x on every rank.
        let (_r, results) = run_sim(p, MachineConfig::ideal(), |cm| {
            let g = world(cm);
            let mine = Payload::Data(vec![cm.rank() as f64 + 0.5]);
            let items = g.gather(cm, 0, mine, 1);
            let back = g.scatter(cm, 0, items, 1);
            back.into_data()[0]
        });
        for (rank, v) in results.into_iter().enumerate() {
            prop_assert_eq!(v, rank as f64 + 0.5);
        }
    }

    #[test]
    fn prop_simulation_is_deterministic(p in 2usize..8, words in 1usize..500) {
        let run = || {
            let (report, _) = run_sim(p, MachineConfig::power5(), |cm| {
                let g = world(cm);
                // A mixed program: compute skew + allreduce + ring shift.
                cm.compute(cm.rank() as f64 * 1e-6, 10.0);
                g.allreduce(cm, Payload::Empty, words, |cm, a, _b| {
                    cm.compute(1e-7, 5.0);
                    a
                });
                let next = (cm.rank() + 1) % cm.size();
                let prev = (cm.rank() + cm.size() - 1) % cm.size();
                cm.send(next, 9, words, Payload::Empty, Link::Row);
                cm.recv(prev, 9);
                cm.now()
            });
            report.per_rank.iter().map(|r| (r.time, r.msgs_sent, r.words_sent)).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run(), "virtual schedule must be run-to-run deterministic");
    }

    #[test]
    fn prop_clocks_never_decrease_and_stats_partition_time(p in 2usize..8) {
        let (report, clocks) = run_sim(p, MachineConfig::power5(), |cm| {
            let g = world(cm);
            let mut last = cm.now();
            let mut ok = true;
            for i in 0..4 {
                cm.compute(1e-6 * (i + 1) as f64, 1.0);
                g.barrier(cm);
                ok &= cm.now() >= last;
                last = cm.now();
            }
            ok
        });
        for ok in clocks {
            prop_assert!(ok, "clock must be monotone");
        }
        for r in &report.per_rank {
            let parts = r.compute_time + r.send_time + r.idle_time;
            prop_assert!((parts - r.time).abs() < 1e-12 * r.time.max(1e-30),
                "compute+send+idle must partition the clock: {parts} vs {}", r.time);
            prop_assert!((r.send_time - (r.alpha_time + r.beta_time)).abs() < 1e-15,
                "send time must split into alpha + beta exactly");
        }
    }

    #[test]
    fn prop_charged_rounds_equal_explicit_butterfly_loops(
        p_exp in 1u32..4, rounds in 1usize..20, words in 1usize..300,
    ) {
        // charge_rounds(rounds * depth) after one real butterfly must give
        // the same clock as running `rounds + 1` real butterflies — the
        // identity the fast skeletons rely on.
        let p = 1usize << p_exp; // power of two: clean butterfly
        let mch = MachineConfig::power5();
        let explicit = {
            let (report, _) = run_sim(p, mch.clone(), |cm| {
                let g = world(cm);
                for _ in 0..rounds + 1 {
                    g.allreduce(cm, Payload::Empty, words, |_cm, a, _b| a);
                }
            });
            report.makespan()
        };
        let charged = {
            let (report, _) = run_sim(p, mch, move |cm| {
                let g = world(cm);
                g.allreduce(cm, Payload::Empty, words, |_cm, a, _b| a);
                cm.charge_rounds(rounds * ceil_log2(p), words, Link::Col);
            });
            report.makespan()
        };
        prop_assert!(
            (explicit - charged).abs() < 1e-12 * explicit.max(1e-30),
            "explicit {explicit} vs charged {charged}"
        );
    }

    #[test]
    fn prop_allgather_order_and_cost(p in 2usize..10, words in 1usize..100) {
        let mch = MachineConfig::power5();
        let per_msg = mch.t_msg(words, Link::Col);
        let (report, results) = run_sim(p, mch, |cm| {
            let g = world(cm);
            let items = g.allgather(cm, Payload::Data(vec![cm.rank() as f64]), words);
            items.into_iter().map(|pl| pl.into_data()[0] as usize).collect::<Vec<_>>()
        });
        for res in results {
            prop_assert_eq!(res, (0..p).collect::<Vec<_>>());
        }
        let expect = (p - 1) as f64 * per_msg;
        prop_assert!((report.makespan() - expect).abs() < per_msg + 1e-12,
            "ring cost {} vs {}", report.makespan(), expect);
    }
}
