//! Property-based stress tests for the simulator's collectives: arbitrary
//! group sizes and roots, consistency between reduce and all-reduce for
//! the same combination tree, and clock monotonicity.

use calu_netsim::{run_sim, Group, Link, MachineConfig, Payload};
use proptest::prelude::*;

fn world(cm: &calu_netsim::SimComm) -> Group {
    Group::new((0..cm.size()).collect(), cm.rank(), Link::Col, 3_000_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prop_bcast_any_size_any_root(p in 1usize..12, root_mul in 0usize..12) {
        let root = root_mul % p;
        let (_rep, results) = run_sim(p, MachineConfig::ideal(), |cm| {
            let g = world(cm);
            let mine = if g.my_index() == root {
                Payload::Data(vec![root as f64 * 3.0 + 1.0])
            } else {
                Payload::Empty
            };
            g.bcast(cm, root, mine, 1).into_data()[0]
        });
        let expect = root as f64 * 3.0 + 1.0;
        prop_assert!(results.iter().all(|&v| v == expect), "{results:?}");
    }

    #[test]
    fn prop_allreduce_concat_is_index_ordered(p in 1usize..12) {
        // Concatenation (non-commutative) exposes any ordering bug.
        let (_rep, results) = run_sim(p, MachineConfig::ideal(), |cm| {
            let g = world(cm);
            g.allreduce(cm, Payload::Data(vec![cm.rank() as f64]), 1, |_cm, a, b| {
                let mut v = a.into_data();
                v.extend(b.into_data());
                Payload::Data(v)
            })
            .into_data()
        });
        for r in &results {
            // Every member sees every rank exactly once.
            let mut sorted = r.clone();
            sorted.sort_by(f64::total_cmp);
            let expect: Vec<f64> = (0..p).map(|i| i as f64).collect();
            prop_assert_eq!(&sorted, &expect);
        }
        // Power-of-two groups: all members agree on the exact order.
        if p.is_power_of_two() {
            for r in &results[1..] {
                prop_assert_eq!(r, &results[0]);
            }
        }
    }

    #[test]
    fn prop_reduce_equals_allreduce_for_pow2(logp in 0u32..4) {
        // Same combination tree for power-of-two groups: a non-commutative
        // op must produce identical results.
        let p = 1usize << logp;
        let (_rep, results) = run_sim(p, MachineConfig::ideal(), |cm| {
            let g = world(cm);
            let concat = |_cm: &mut calu_netsim::SimComm, a: Payload, b: Payload| {
                let mut v = a.into_data();
                v.extend(b.into_data());
                Payload::Data(v)
            };
            let red = g.reduce(cm, Payload::Data(vec![cm.rank() as f64]), 1, concat);
            let all = g.allreduce(cm, Payload::Data(vec![cm.rank() as f64]), 1, concat);
            (red.map(Payload::into_data), all.into_data())
        });
        let all0 = results[0].1.clone();
        prop_assert_eq!(results[0].0.as_ref(), Some(&all0));
    }

    #[test]
    fn prop_clocks_never_decrease(p in 2usize..8, rounds in 1usize..5) {
        let (report, results) = run_sim(p, MachineConfig::power5(), |cm| {
            let g = world(cm);
            let mut last = 0.0;
            let mut ok = true;
            for _ in 0..rounds {
                g.barrier(cm);
                cm.compute(1e-6, 10.0);
                ok &= cm.now() >= last;
                last = cm.now();
            }
            ok
        });
        prop_assert!(results.iter().all(|&b| b));
        for r in &report.per_rank {
            prop_assert!(r.time >= 0.0);
            prop_assert!(r.compute_time > 0.0);
        }
    }

    #[test]
    fn prop_skeleton_times_deterministic(p in 1usize..6) {
        let run = || {
            let (rep, _) = run_sim(p, MachineConfig::xt4(), |cm| {
                let g = world(cm);
                g.allreduce(cm, Payload::Empty, 64, |cm, a, _b| {
                    cm.compute(1e-5, 100.0);
                    a
                });
                cm.now()
            });
            rep.per_rank.iter().map(|r| r.time).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
