//! Per-rank simulated communicator with a virtual clock.
//!
//! Every simulated process runs on a real OS thread; numerical payloads flow
//! through crossbeam channels, so distributed algorithms execute their
//! *actual* data flow. Time, however, is virtual: each rank carries a clock
//! that advances by modeled compute time ([`SimComm::compute`]) and by the
//! α-β cost of every message. A receive waits until the message's modeled
//! arrival: `clock = max(clock, sender_departure + α + w·β)` — the standard
//! LogP-style postal semantics, matching the paper's "α + mβ" model.
//!
//! Messages are matched selectively by `(source, tag)` (MPI semantics);
//! mismatching arrivals are parked until asked for, so SPMD code can post
//! sends in any order without deadlocking the virtual schedule.

use crate::machine::{Link, MachineConfig};
use crossbeam::channel::{Receiver, Sender};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// Message body: real data for numerics runs, or nothing for cost-skeleton
/// runs of paper-scale problems (the charged `words` are independent of the
/// physical payload).
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// No physical data (skeleton mode).
    Empty,
    /// A vector of `f64` (dense blocks, pivot candidates, permutations…).
    Data(Vec<f64>),
}

impl Payload {
    /// Unwraps the data variant.
    ///
    /// # Panics
    /// If the payload is [`Payload::Empty`].
    pub fn into_data(self) -> Vec<f64> {
        match self {
            Payload::Data(v) => v,
            Payload::Empty => panic!("expected data payload, got Empty"),
        }
    }

    /// Number of physical `f64`s carried (0 for `Empty`).
    pub fn physical_len(&self) -> usize {
        match self {
            Payload::Empty => 0,
            Payload::Data(v) => v.len(),
        }
    }
}

pub(crate) struct Envelope {
    pub src: usize,
    pub tag: u64,
    /// Modeled arrival time at the receiver (departure + α + w·β).
    pub arrive: f64,
    pub words: usize,
    pub payload: Payload,
}

/// Per-rank accounting accumulated during a simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankStats {
    /// Final virtual clock (seconds).
    pub time: f64,
    /// Virtual seconds spent in modeled compute.
    pub compute_time: f64,
    /// Virtual seconds the sender spent injecting messages (α + wβ each).
    pub send_time: f64,
    /// The latency (`α`) part of [`Self::send_time`] — the component CALU
    /// attacks (paper Section 1: "CALU overcomes the latency bottleneck").
    pub alpha_time: f64,
    /// The volume (`w·β`) part of [`Self::send_time`]; CALU and `PDGETRF`
    /// move the same volume (paper Section 5), so this should match across
    /// the two algorithms.
    pub beta_time: f64,
    /// Virtual seconds spent blocked waiting for arrivals.
    pub idle_time: f64,
    /// Messages sent.
    pub msgs_sent: u64,
    /// 8-byte words sent.
    pub words_sent: u64,
    /// Modeled flops executed.
    pub flops: f64,
}

/// The simulated communicator handed to each rank's closure by
/// [`run_sim`](crate::runner::run_sim).
pub struct SimComm {
    rank: usize,
    size: usize,
    machine: Arc<MachineConfig>,
    clock: f64,
    senders: Vec<Sender<Envelope>>,
    inbox: Receiver<Envelope>,
    parked: HashMap<(usize, u64), VecDeque<Envelope>>,
    stats: RankStats,
    /// Timeline of this rank's segments, recorded only under
    /// [`run_sim_traced`](crate::runner::run_sim_traced).
    trace: Option<Vec<crate::trace::TraceEvent>>,
    /// Deferrable compute (seconds) that may fill receive-wait gaps — the
    /// look-ahead overlap model. See [`SimComm::defer_compute`].
    deferred_secs: f64,
    /// Flops attached to the deferred seconds (consumed proportionally).
    deferred_flops: f64,
}

/// How long a simulated rank may block on a real channel before the harness
/// declares the SPMD program deadlocked. Generous because skeleton runs of
/// big sweeps legitimately keep ranks idle for a while (real time, not
/// virtual time).
const RECV_TIMEOUT: Duration = Duration::from_secs(120);

impl SimComm {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        machine: Arc<MachineConfig>,
        senders: Vec<Sender<Envelope>>,
        inbox: Receiver<Envelope>,
    ) -> Self {
        Self {
            rank,
            size,
            machine,
            clock: 0.0,
            senders,
            inbox,
            parked: HashMap::new(),
            stats: RankStats::default(),
            trace: None,
            deferred_secs: 0.0,
            deferred_flops: 0.0,
        }
    }

    /// Enables trace recording for this rank (used by
    /// [`run_sim_traced`](crate::runner::run_sim_traced)).
    pub(crate) fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    pub(crate) fn take_trace(&mut self) -> Vec<crate::trace::TraceEvent> {
        self.trace.take().unwrap_or_default()
    }

    #[inline]
    fn record(&mut self, kind: crate::trace::SegKind, start: f64, end: f64) {
        if let Some(tr) = self.trace.as_mut() {
            if end > start {
                tr.push(crate::trace::TraceEvent { kind, start, end });
            }
        }
    }

    /// This rank's id in `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the simulation.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Current virtual time in seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// The machine model this simulation runs under.
    #[inline]
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// Accumulated accounting for this rank.
    pub fn stats(&self) -> &RankStats {
        &self.stats
    }

    pub(crate) fn into_stats(mut self) -> RankStats {
        // Deferred work that never found a gap still has to run.
        self.flush_deferred();
        self.stats.time = self.clock;
        self.stats
    }

    /// Advances the virtual clock by `seconds` of compute performing
    /// `flops` floating-point operations.
    pub fn compute(&mut self, seconds: f64, flops: f64) {
        debug_assert!(seconds >= 0.0 && flops >= 0.0);
        let t0 = self.clock;
        self.clock += seconds;
        self.stats.compute_time += seconds;
        self.stats.flops += flops;
        self.record(crate::trace::SegKind::Compute, t0, self.clock);
    }

    /// Sends `payload` to `to` with matching `tag`, charging `words` 8-byte
    /// words on `link`. The sender's clock advances by the full `α + w·β`
    /// (the paper's model treats sends as blocking steps).
    pub fn send(&mut self, to: usize, tag: u64, words: usize, payload: Payload, link: Link) {
        assert!(to < self.size, "send to rank {to} out of {}", self.size);
        assert_ne!(to, self.rank, "self-send is not modeled");
        let t = self.machine.t_msg(words, link);
        let t0 = self.clock;
        self.clock += t;
        self.stats.send_time += t;
        self.stats.alpha_time += self.machine.alpha(link);
        self.stats.beta_time += words as f64 * self.machine.beta(link);
        self.stats.msgs_sent += 1;
        self.stats.words_sent += words as u64;
        self.record(crate::trace::SegKind::Send, t0, self.clock);
        let env = Envelope { src: self.rank, tag, arrive: self.clock, words, payload };
        self.senders[to]
            .send(env)
            .unwrap_or_else(|_| panic!("rank {} vanished before receiving", to));
    }

    /// Receives the next message from `from` with `tag`, blocking the real
    /// thread as needed and advancing the virtual clock to the arrival.
    ///
    /// # Panics
    /// If no matching message shows up within a generous real-time bound
    /// (which indicates a deadlocked SPMD program).
    pub fn recv(&mut self, from: usize, tag: u64) -> (Payload, usize) {
        let env = self.take_matching(from, tag);
        if env.arrive > self.clock {
            let t0 = self.clock;
            let gap = env.arrive - self.clock;
            // Deferred compute fills the wait (look-ahead overlap model):
            // the clock still jumps to the arrival, but up to `gap` seconds
            // of the deferred pool execute "for free" during it.
            let used = gap.min(self.deferred_secs);
            if used > 0.0 {
                let flops = self.deferred_flops * (used / self.deferred_secs);
                self.deferred_secs -= used;
                self.deferred_flops -= flops;
                self.stats.compute_time += used;
                self.stats.flops += flops;
                self.record(crate::trace::SegKind::Compute, t0, t0 + used);
            }
            self.stats.idle_time += gap - used;
            self.clock = env.arrive;
            self.record(crate::trace::SegKind::Idle, t0 + used, self.clock);
        }
        (env.payload, env.words)
    }

    /// Adds compute work to the *deferred* pool: it does not advance the
    /// clock now, but fills this rank's receive-wait gaps until
    /// [`SimComm::flush_deferred`] charges whatever is left.
    ///
    /// This is the cost-model counterpart of communication/computation
    /// overlap — HPL's look-ahead defers the trailing update so the next
    /// panel's factorization (and its message waits) can proceed; the paper
    /// names exactly that technique as compatible with CALU (Section 4).
    pub fn defer_compute(&mut self, seconds: f64, flops: f64) {
        debug_assert!(seconds >= 0.0 && flops >= 0.0);
        self.deferred_secs += seconds;
        self.deferred_flops += flops;
    }

    /// Charges any deferred compute that found no wait gap to hide in.
    /// Call before the deferred work's *results* are needed.
    pub fn flush_deferred(&mut self) {
        let (s, f) = (self.deferred_secs, self.deferred_flops);
        self.deferred_secs = 0.0;
        self.deferred_flops = 0.0;
        if s > 0.0 {
            self.compute(s, f);
        }
    }

    fn take_matching(&mut self, from: usize, tag: u64) -> Envelope {
        if let Some(q) = self.parked.get_mut(&(from, tag)) {
            if let Some(env) = q.pop_front() {
                return env;
            }
        }
        loop {
            let env = self.inbox.recv_timeout(RECV_TIMEOUT).unwrap_or_else(|_| {
                panic!(
                    "rank {} timed out waiting for (src={from}, tag={tag}) — SPMD deadlock?",
                    self.rank
                )
            });
            if env.src == from && env.tag == tag {
                return env;
            }
            self.parked.entry((env.src, env.tag)).or_default().push_back(env);
        }
    }

    /// Charges `rounds` additional serialized message rounds of `words`
    /// words each on `link` — clock, message and word counters advance as
    /// if the rounds happened, but no physical channel traffic occurs.
    ///
    /// Cost skeletons use this for inner loops of *identical* exchanges
    /// (e.g. `PDLASWP`'s per-row swaps, `PDGETF2`'s per-column reductions):
    /// once a group has been coupled by one real round, every further
    /// serialized round advances each member's clock by exactly `α + w·β`
    /// per tree level — the paper's own "log₂ P identical steps" modeling
    /// assumption — so simulating the channel traffic adds nothing but
    /// wall-clock. Never use it for exchanges that *change* the relative
    /// schedule of ranks.
    pub fn charge_rounds(&mut self, rounds: usize, words: usize, link: Link) {
        let t = self.machine.t_msg(words, link) * rounds as f64;
        let t0 = self.clock;
        self.clock += t;
        self.stats.send_time += t;
        self.stats.alpha_time += rounds as f64 * self.machine.alpha(link);
        self.stats.beta_time += (rounds * words) as f64 * self.machine.beta(link);
        self.stats.msgs_sent += rounds as u64;
        self.stats.words_sent += (rounds * words) as u64;
        self.record(crate::trace::SegKind::Send, t0, self.clock);
    }

    /// Exchange with a partner (both directions, same tag/size class):
    /// send first, then receive — the butterfly step of TSLU.
    pub fn sendrecv(
        &mut self,
        peer: usize,
        tag: u64,
        words: usize,
        payload: Payload,
        link: Link,
    ) -> (Payload, usize) {
        self.send(peer, tag, words, payload, link);
        self.recv(peer, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use crate::runner::run_sim;

    #[test]
    fn ping_pong_advances_clocks_by_alpha_beta() {
        let m = MachineConfig::power5();
        let alpha = m.alpha_col;
        let beta = m.beta_col;
        let (report, _) = run_sim(2, m, |cm| {
            if cm.rank() == 0 {
                cm.send(1, 7, 100, Payload::Data(vec![1.0; 100]), Link::Col);
                let (p, w) = cm.recv(1, 8);
                assert_eq!(w, 100);
                assert_eq!(p.physical_len(), 100);
            } else {
                let (_p, _w) = cm.recv(0, 7);
                cm.send(0, 8, 100, Payload::Data(vec![2.0; 100]), Link::Col);
            }
        });
        let one_msg = alpha + 100.0 * beta;
        // Postal model: each hop is one message step on the critical path.
        // Rank 0's reply arrives at 2 message times (our send completes at
        // 1T; rank 1's reply departs/arrives at 2T).
        let expect = 2.0 * one_msg;
        assert!(
            (report.per_rank[0].time - expect).abs() < 1e-12,
            "got {}, want {}",
            report.per_rank[0].time,
            expect
        );
    }

    #[test]
    fn selective_receive_reorders_messages() {
        let (_report, results) = run_sim(2, MachineConfig::ideal(), |cm| {
            if cm.rank() == 0 {
                cm.send(1, 1, 1, Payload::Data(vec![1.0]), Link::Col);
                cm.send(1, 2, 1, Payload::Data(vec![2.0]), Link::Col);
                0.0
            } else {
                // Ask for tag 2 first even though tag 1 arrives first.
                let (p2, _) = cm.recv(0, 2);
                let (p1, _) = cm.recv(0, 1);
                p2.into_data()[0] * 10.0 + p1.into_data()[0]
            }
        });
        assert_eq!(results[1], 21.0);
    }

    #[test]
    fn compute_accumulates_stats() {
        let (report, _) = run_sim(1, MachineConfig::ideal(), |cm| {
            cm.compute(1.5, 300.0);
            cm.compute(0.5, 100.0);
        });
        assert_eq!(report.per_rank[0].compute_time, 2.0);
        assert_eq!(report.per_rank[0].flops, 400.0);
        assert_eq!(report.per_rank[0].time, 2.0);
    }

    #[test]
    fn deferred_compute_fills_recv_gaps() {
        let m = MachineConfig::ideal();
        let (report, _) = run_sim(2, m, |cm| {
            if cm.rank() == 0 {
                cm.compute(5.0, 0.0); // rank 0 busy 5 s
                cm.send(1, 0, 0, Payload::Empty, Link::Col);
            } else {
                cm.defer_compute(3.0, 300.0); // hides in the 5 s wait
                cm.recv(0, 0);
                cm.flush_deferred(); // nothing left to charge
            }
        });
        let r1 = &report.per_rank[1];
        assert!((r1.compute_time - 3.0).abs() < 1e-12, "overlapped work counts as compute");
        assert!((r1.idle_time - 2.0).abs() < 1e-12, "only the uncovered gap is idle");
        assert!((r1.time - 5.0).abs() < 1e-12, "clock still jumps to the arrival");
        assert!((r1.flops - 300.0).abs() < 1e-9);
    }

    #[test]
    fn deferred_compute_beyond_gap_is_charged_at_flush() {
        let m = MachineConfig::ideal();
        let (report, _) = run_sim(2, m, |cm| {
            if cm.rank() == 0 {
                cm.compute(1.0, 0.0);
                cm.send(1, 0, 0, Payload::Empty, Link::Col);
            } else {
                cm.defer_compute(4.0, 400.0);
                cm.recv(0, 0); // absorbs 1 s
                cm.flush_deferred(); // charges the remaining 3 s
            }
        });
        let r1 = &report.per_rank[1];
        assert!((r1.compute_time - 4.0).abs() < 1e-12);
        assert!((r1.time - 4.0).abs() < 1e-12, "1 s hidden + 3 s flushed");
        assert_eq!(r1.idle_time, 0.0);
    }

    #[test]
    fn unflushed_deferred_work_is_charged_at_exit() {
        let (report, _) = run_sim(1, MachineConfig::ideal(), |cm| {
            cm.defer_compute(2.0, 200.0);
            // No flush: the harness must not lose the work.
        });
        assert!((report.per_rank[0].time - 2.0).abs() < 1e-12);
        assert!((report.per_rank[0].flops - 200.0).abs() < 1e-9);
    }

    #[test]
    fn idle_time_counts_waiting() {
        let m = MachineConfig::ideal();
        let (report, _) = run_sim(2, m, |cm| {
            if cm.rank() == 0 {
                cm.compute(5.0, 0.0); // rank 0 is busy...
                cm.send(1, 0, 0, Payload::Empty, Link::Col);
            } else {
                cm.recv(0, 0); // ...so rank 1 idles 5 virtual seconds.
            }
        });
        assert!((report.per_rank[1].idle_time - 5.0).abs() < 1e-12);
        assert!((report.per_rank[1].time - 5.0).abs() < 1e-12);
    }
}
