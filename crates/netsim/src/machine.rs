//! Machine cost models: the α-β-γ parameters the paper's analysis uses
//! (Section 3: "one parameter to describe the time per flop, denoted γ, and
//! one parameter to count the time per divide, denoted γd. We estimate the
//! time for sending a message of m words between two processors as α + mβ"),
//! extended with per-BLAS-level flop rates so that the classic-vs-recursive
//! local LU comparison of Tables 3-4 is expressible.
//!
//! # Calibration
//!
//! Absolute constants come from the paper's hardware descriptions plus
//! public system documents; `EXPERIMENTS.md` records the provenance:
//!
//! * **IBM POWER5** (NERSC "Bassi"): 1.9 GHz, 7.6 GFLOP/s peak per
//!   processor; ESSL `dgemm` sustains ~85% of peak on large blocks; MPI
//!   point-to-point internode latency 4.5 µs, peak bandwidth 3100 MB/s
//!   (paper Section 6). BLAS-2 (`dger`-class) throughput is memory bound:
//!   2 flops per 16 bytes streamed at ~4.8 GB/s sustained per processor
//!   (eight processors share a node's memory system) ≈ 0.6 GFLOP/s.
//! * **Cray XT4** (NERSC "Franklin"): 2.6 GHz dual-core Opteron node,
//!   5.2 GFLOP/s per core; the paper runs ScaLAPACK in mixed mode (one MPI
//!   rank per node, threaded Goto BLAS on the two cores), so one "processor"
//!   in the tables is a 10.4 GFLOP/s node. Portals/SeaStar MPI latency
//!   ~7.5 µs, effective point-to-point bandwidth ~1.7 GB/s.
//!
//! BLAS-3 kernels lose efficiency on skinny blocks; we model the rate as
//! `rate(d) = rate_inf * d / (d + n_half3)` where `d` is the smallest
//! dimension of the multiply — the usual "half-performance dimension"
//! roofline form. This single knob reproduces the paper's observation that
//! recursive local LU loses to classic `getf2` on small panels (recursion
//! bottoms out in skinny `gemm`s) but wins decisively on large ones.

/// Which network direction a message travels; the paper distinguishes
/// communication "within processor columns" (`αc`, `βc`) from "within
/// processor rows" (`αr`, `βr`) as a first step toward hierarchical
/// machines (Section 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Link {
    /// Between processors in the same grid column (different rows).
    Col,
    /// Between processors in the same grid row (different columns).
    Row,
}

/// Floating-point width the modeled kernels compute and communicate at.
///
/// The baseline calibration of every [`MachineConfig`] preset is double
/// precision (the paper's setting); [`MachineConfig::for_precision`]
/// derives the single-precision rates from it. Mixed-precision schedules
/// (factor in `f32`, refine in `f64`) combine costs from both derived
/// configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// IEEE single (4-byte elements).
    F32,
    /// IEEE double (8-byte elements) — the calibration baseline.
    #[default]
    F64,
}

impl Precision {
    /// Bytes per element.
    pub fn bytes(self) -> usize {
        match self {
            Precision::F32 => 4,
            Precision::F64 => 8,
        }
    }

    /// Short name for reports (`"f32"` / `"f64"`).
    pub fn name(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::F64 => "f64",
        }
    }
}

/// α-β-γ machine description used by both the discrete-event simulator and
/// the closed-form models of `calu-perfmodel`.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Human-readable system name (appears in reports).
    pub name: &'static str,
    /// Seconds per flop at asymptotic BLAS-3 rate (large `gemm`).
    pub gamma3: f64,
    /// Half-performance dimension for BLAS-3 kernels: a multiply whose
    /// smallest dimension is `d` runs at `d / (d + n_half3)` of peak.
    pub n_half3: f64,
    /// Seconds per flop for BLAS-2 kernels (`ger`, `gemv`) on blocks that
    /// stream from main memory (footprint > [`Self::cache_bytes`]).
    pub gamma2: f64,
    /// Seconds per flop for BLAS-2 kernels on cache-resident blocks (the
    /// tournament's `2b x b` GEPPs, small panels) — core bound, not
    /// bandwidth bound.
    pub gamma2_cache: f64,
    /// Effective cache capacity per processor, bytes; the BLAS-2 rate
    /// switches between the two regimes at this footprint.
    pub cache_bytes: f64,
    /// Seconds per flop for BLAS-1 kernels (`axpy`, `iamax` scans).
    pub gamma1: f64,
    /// Seconds per floating-point divide (the paper's `γd`).
    pub gamma_div: f64,
    /// Fixed overhead charged per node of the recursive LU call tree
    /// (function-call, blocking set-up, and — on the XT4's threaded Goto
    /// BLAS — thread fork/join for each small `gemm`). This is what makes
    /// classic `DGETF2` competitive on small panels in Tables 3-4.
    pub rec_call_overhead: f64,
    /// Message latency along grid columns, seconds (the paper's `αc`).
    pub alpha_col: f64,
    /// Per-word transfer time along grid columns, seconds (`βc`, 8-byte words).
    pub beta_col: f64,
    /// Message latency along grid rows (`αr`).
    pub alpha_row: f64,
    /// Per-word transfer time along grid rows (`βr`).
    pub beta_row: f64,
}

impl MachineConfig {
    /// IBM p575 POWER5 ("Bassi") — see module docs for provenance.
    pub fn power5() -> Self {
        Self {
            name: "IBM POWER5",
            gamma3: 1.0 / 6.5e9,
            n_half3: 14.0,
            // dger on tall panels streams the whole trailing block through
            // memory: 2 flops per 16 bytes at ~4.8 GB/s sustained per
            // processor (8 procs share a node's memory system) ≈ 0.6 GF/s.
            // Cache-resident blocks run core-bound at ~1.9 GF/s (36 MB L3
            // per chip ≈ 16 MB effective per processor).
            gamma2: 1.0 / 0.6e9,
            gamma2_cache: 1.0 / 1.9e9,
            cache_bytes: 16e6,
            gamma1: 1.0 / 0.5e9,
            gamma_div: 1.8e-8,
            rec_call_overhead: 0.6e-6,
            alpha_col: 4.5e-6,
            beta_col: 8.0 / 3.1e9,
            alpha_row: 4.5e-6,
            beta_row: 8.0 / 3.1e9,
        }
    }

    /// Cray XT4 ("Franklin"), one MPI rank per dual-core node — see module docs.
    pub fn xt4() -> Self {
        Self {
            name: "Cray XT4",
            gamma3: 1.0 / 9.4e9,
            n_half3: 30.0,
            // Dual-core Opteron node, DDR2: ~6.4 GB/s stream -> ~0.8 GF/s
            // for rank-1 updates; ~1.6 GF/s when the block fits the 2x1 MB
            // of L2.
            gamma2: 1.0 / 0.8e9,
            gamma2_cache: 1.0 / 1.6e9,
            cache_bytes: 2e6,
            gamma1: 1.0 / 0.6e9,
            gamma_div: 1.2e-8,
            rec_call_overhead: 8.0e-6,
            alpha_col: 7.5e-6,
            beta_col: 8.0 / 1.7e9,
            alpha_row: 7.5e-6,
            beta_row: 8.0 / 1.7e9,
        }
    }

    /// A hierarchical machine: POWER5 compute with cheap *row* links
    /// (processors in the same grid row placed on one node: 1 µs / 8 GB/s)
    /// and expensive *column* links (internode: 4.5 µs / 3.1 GB/s).
    ///
    /// The paper introduces distinct `(αr, βr)` / `(αc, βc)` precisely as
    /// "a first step towards understanding certain hierarchical parallel
    /// machines" (Section 4); this preset exercises that path — grid-shape
    /// sweeps under it favor tall grids less than under uniform links.
    pub fn hierarchical() -> Self {
        Self {
            name: "hierarchical (fast rows)",
            alpha_row: 1.0e-6,
            beta_row: 8.0 / 8.0e9,
            ..Self::power5()
        }
    }

    /// A contemporary commodity cluster a downstream user might actually
    /// run on (order-of-magnitude 2020s numbers: ~1 TF/s useful dgemm per
    /// node-socket, 200 Gb/s-class fabric at ~2 µs MPI latency). Relative
    /// to the POWER5 this machine has ~150x the flops but only ~8x the
    /// bandwidth and ~2x better latency — exactly the drift the paper's
    /// introduction predicts, which is why CALU's advantage is *larger*
    /// here (see `fig_trend` / `latency_trends`).
    pub fn modern_cluster() -> Self {
        Self {
            name: "modern cluster",
            gamma3: 1.0 / 1.0e12,
            n_half3: 64.0,
            gamma2: 1.0 / 25.0e9,
            gamma2_cache: 1.0 / 60.0e9,
            cache_bytes: 32e6,
            gamma1: 1.0 / 12.0e9,
            gamma_div: 2.5e-10,
            rec_call_overhead: 0.1e-6,
            alpha_col: 2.0e-6,
            beta_col: 8.0 / 24.0e9,
            alpha_row: 2.0e-6,
            beta_row: 8.0 / 24.0e9,
        }
    }

    /// A fictional zero-communication-cost machine with 1 ns/flop at every
    /// BLAS level; handy in tests because virtual times become exact flop
    /// counts.
    pub fn ideal() -> Self {
        Self {
            name: "ideal",
            gamma3: 1e-9,
            n_half3: 0.0,
            gamma2: 1e-9,
            gamma2_cache: 1e-9,
            cache_bytes: f64::INFINITY,
            gamma1: 1e-9,
            gamma_div: 1e-9,
            rec_call_overhead: 0.0,
            alpha_col: 0.0,
            beta_col: 0.0,
            alpha_row: 0.0,
            beta_row: 0.0,
        }
    }

    /// Theoretical peak of one processor in flop/s (taken as the BLAS-3
    /// asymptote; used for "percentage of peak" columns).
    pub fn peak_flops(&self) -> f64 {
        1.0 / self.gamma3
    }

    /// Derives the cost model for computing at precision `p` from this
    /// (double-precision-calibrated) description.
    ///
    /// Single precision halves the bytes per element, which on every
    /// machine this repo models doubles the useful SIMD width and the
    /// effective cache/bandwidth capacity: all γ flop rates double
    /// (γ values halve), per-element β transfer costs halve, divides
    /// speed up the same 2×, and the cache holds twice as many elements
    /// (`cache_bytes`/`t_msg`/`gamma2_for` count 8-byte-word-equivalents,
    /// so the capacity is expressed by doubling it). Latency α and the
    /// per-call recursion overhead are width-independent and unchanged —
    /// which is exactly why the paper's latency-dominated regime sees
    /// *less* than 2× from dropping precision, while the mixed-precision
    /// solver still wins: refinement costs only `O(n²)` per step at f64.
    ///
    /// `Precision::F64` returns the config unchanged.
    pub fn for_precision(&self, p: Precision) -> MachineConfig {
        match p {
            Precision::F64 => self.clone(),
            Precision::F32 => MachineConfig {
                gamma3: self.gamma3 / 2.0,
                gamma2: self.gamma2 / 2.0,
                gamma2_cache: self.gamma2_cache / 2.0,
                gamma1: self.gamma1 / 2.0,
                gamma_div: self.gamma_div / 2.0,
                beta_col: self.beta_col / 2.0,
                beta_row: self.beta_row / 2.0,
                cache_bytes: self.cache_bytes * 2.0,
                ..self.clone()
            },
        }
    }

    /// Latency for one message on `link`.
    #[inline]
    pub fn alpha(&self, link: Link) -> f64 {
        match link {
            Link::Col => self.alpha_col,
            Link::Row => self.alpha_row,
        }
    }

    /// Per-word cost on `link`.
    #[inline]
    pub fn beta(&self, link: Link) -> f64 {
        match link {
            Link::Col => self.beta_col,
            Link::Row => self.beta_row,
        }
    }

    /// Time to move one message of `words` 8-byte words on `link`.
    #[inline]
    pub fn t_msg(&self, words: usize, link: Link) -> f64 {
        self.alpha(link) + words as f64 * self.beta(link)
    }

    /// BLAS-3 efficiency factor for smallest dimension `d`.
    #[inline]
    pub fn eff3(&self, d: usize) -> f64 {
        let d = d.max(1) as f64;
        d / (d + self.n_half3)
    }

    /// Time for `C += A*B` with `A: m x k`, `B: k x n`.
    pub fn t_gemm(&self, m: usize, n: usize, k: usize) -> f64 {
        if m == 0 || n == 0 || k == 0 {
            return 0.0;
        }
        let d = m.min(n).min(k);
        flops_gemm(m, n, k) * self.gamma3 / self.eff3(d)
    }

    /// Time for a triangular solve with an `t x t` triangle applied from the
    /// left to `t x n` right-hand sides (BLAS-3 class).
    pub fn t_trsm_left(&self, t: usize, n: usize) -> f64 {
        if t == 0 || n == 0 {
            return 0.0;
        }
        let d = t.min(n);
        flops_trsm_left(t, n) * self.gamma3 / self.eff3(d)
    }

    /// Time for `B <- B * T^{-1}` with `B: m x t` (right-side solve, BLAS-3).
    pub fn t_trsm_right(&self, m: usize, t: usize) -> f64 {
        if t == 0 || m == 0 {
            return 0.0;
        }
        let d = t.min(m);
        flops_trsm_right(m, t) * self.gamma3 / self.eff3(d)
    }

    /// BLAS-2 rate for an operation touching an `m x n` block: stream rate
    /// if the block spills the cache, core rate otherwise.
    #[inline]
    pub fn gamma2_for(&self, m: usize, n: usize) -> f64 {
        if (m * n * 8) as f64 > self.cache_bytes {
            self.gamma2
        } else {
            self.gamma2_cache
        }
    }

    /// Time for a rank-1 update of an `m x n` block (BLAS-2).
    pub fn t_ger(&self, m: usize, n: usize) -> f64 {
        flops_ger(m, n) * self.gamma2_for(m, n)
    }

    /// Time for classic unblocked `getf2` on an `m x n` panel:
    /// per column a pivot scan (BLAS-1), one divide + scaling, and a rank-1
    /// trailing update (BLAS-2). This is the `DGETF2` (Cl) configuration of
    /// Tables 3-4.
    pub fn t_getf2(&self, m: usize, n: usize) -> f64 {
        let kn = m.min(n);
        let mut t = 0.0;
        for j in 0..kn {
            let rows = m - j;
            t += rows as f64 * self.gamma1; // iamax scan
            t += self.gamma_div + (rows - 1) as f64 * self.gamma1; // reciprocal + scale
            if j + 1 < n {
                t += self.t_ger(rows - 1, n - j - 1);
            }
        }
        t
    }

    /// Time for recursive `rgetf2` on an `m x n` (tall) panel — evaluated by
    /// actually recursing, so the skinny-`gemm` penalty at the leaves
    /// emerges from `n_half3` just as it does on real hardware. This is the
    /// `RGETF2` (Rec) configuration of Tables 3-4.
    pub fn t_rgetf2(&self, m: usize, n: usize) -> f64 {
        const BASE: usize = 4;
        if n == 0 || m == 0 {
            return 0.0;
        }
        let n1 = n / 2;
        // Short/wide blocks (m <= n/2, e.g. a partial trailing block-row)
        // have no useful split; the real kernel falls back to getf2 there.
        if n <= BASE || m <= n1 {
            return self.rec_call_overhead + self.t_getf2(m, n);
        }
        let n2 = n - n1;
        self.rec_call_overhead
            + self.t_rgetf2(m, n1)
            + self.t_trsm_left(n1, n2)
            + self.t_gemm(m - n1, n2, n1)
            + self.t_rgetf2(m - n1, n2)
    }

    /// Time for LU with no pivoting on an `m x n` panel (CALU's second
    /// pass over the panel). Modeled as `getf2` minus the pivot scans when
    /// unblocked is used; CALU in practice uses the blocked/`trsm` form,
    /// so we charge the BLAS-3 friendly decomposition.
    pub fn t_lu_nopiv(&self, m: usize, n: usize) -> f64 {
        // L21 = A21 U11^{-1} via right trsm + small in-place LU of the top
        // n x n block (BLAS-2, low order).
        self.t_getf2(n, n) + self.t_trsm_right(m.saturating_sub(n), n)
    }

    /// Memory time to swap `nswaps` rows of width `cols` locally (BLAS-1
    /// class traffic).
    pub fn t_laswp(&self, nswaps: usize, cols: usize) -> f64 {
        (nswaps * cols) as f64 * self.gamma1
    }
}

/// Flop count for `gemm` (multiply-adds counted as 2).
pub fn flops_gemm(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

/// Flop count for a left triangular solve (`t x t` triangle, `n` RHS).
pub fn flops_trsm_left(t: usize, n: usize) -> f64 {
    t as f64 * t as f64 * n as f64
}

/// Flop count for a right triangular solve (`m` rows, `t x t` triangle).
pub fn flops_trsm_right(m: usize, t: usize) -> f64 {
    m as f64 * t as f64 * t as f64
}

/// Flop count for a rank-1 update.
pub fn flops_ger(m: usize, n: usize) -> f64 {
    2.0 * m as f64 * n as f64
}

/// Flop count for LU of an `m x n` panel (`getf2`-style, multiply+add), the
/// standard `mn² − n³/3` pairs doubled.
pub fn flops_getf2(m: usize, n: usize) -> f64 {
    let (m, n) = (m as f64, n as f64);
    if m >= n {
        m * n * n - n * n * n / 3.0
    } else {
        // For wide inputs integrate only the m elimination steps.
        n * m * m - m * m * m / 3.0
    }
}

/// Total flop count for LU of an `m x n` matrix, the familiar
/// `mn² − n³/3` multiply-add pairs (×2 flops each) at leading order — the
/// paper's `(mn² − n³/3)/P` per-processor term uses the same count.
pub fn flops_lu(m: usize, n: usize) -> f64 {
    flops_getf2(m, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_time_is_alpha_plus_beta() {
        let m = MachineConfig::power5();
        let t = m.t_msg(1000, Link::Col);
        assert!((t - (4.5e-6 + 1000.0 * 8.0 / 3.1e9)).abs() < 1e-15);
    }

    #[test]
    fn eff3_monotone_in_dimension() {
        let m = MachineConfig::power5();
        assert!(m.eff3(4) < m.eff3(50));
        assert!(m.eff3(50) < m.eff3(500));
        assert!(m.eff3(100000) < 1.0 + 1e-12);
    }

    #[test]
    fn gemm_time_scales_with_work() {
        let m = MachineConfig::xt4();
        let t1 = m.t_gemm(100, 100, 100);
        let t2 = m.t_gemm(200, 100, 100);
        assert!(t2 > 1.9 * t1 && t2 < 2.1 * t1);
    }

    #[test]
    fn rgetf2_beats_getf2_on_large_panels_only() {
        // The crossover the paper reports: classic wins on small panels,
        // recursive wins on large ones (Tables 3-4).
        let m = MachineConfig::xt4();
        let small_cl = m.t_getf2(250, 50);
        let small_rec = m.t_rgetf2(250, 50);
        let large_cl = m.t_getf2(250_000, 150);
        let large_rec = m.t_rgetf2(250_000, 150);
        assert!(
            large_rec < 0.5 * large_cl,
            "recursive must win big on tall panels: {large_rec} vs {large_cl}"
        );
        // On tiny panels the recursion overhead makes classic competitive
        // (the XT4 columns of Table 4 even show Cl ahead for m = 10^3).
        assert!(small_rec > 0.8 * small_cl, "tiny panels: {small_rec} vs {small_cl}");
    }

    #[test]
    fn ideal_machine_times_are_flop_counts() {
        let m = MachineConfig::ideal();
        let t = m.t_gemm(10, 10, 10);
        assert!((t - 2000.0e-9).abs() < 1e-18);
        assert_eq!(m.t_msg(100, Link::Row), 0.0);
    }

    #[test]
    fn flop_counts_match_closed_forms() {
        assert_eq!(flops_gemm(2, 3, 4), 48.0);
        assert_eq!(flops_ger(5, 6), 60.0);
        // Square LU: 2n^3/3 at leading order.
        let n = 100.0;
        let f = flops_lu(100, 100);
        assert!((f - (n * n * n - n * n * n / 3.0)).abs() < 1e-6);
    }

    #[test]
    fn presets_are_distinct_and_sane() {
        let p = MachineConfig::power5();
        let x = MachineConfig::xt4();
        assert!(p.peak_flops() > 1e9 && x.peak_flops() > 1e9);
        assert!(x.alpha_col > p.alpha_col, "XT4 has higher MPI latency");
        assert!(x.beta_col > p.beta_col, "XT4 has lower bandwidth in our calibration");
        assert!(p.gamma2 > p.gamma3, "BLAS-2 must be slower than BLAS-3");
        assert!(p.gamma2 > p.gamma2_cache, "streaming BLAS-2 slower than in-cache");
    }

    #[test]
    fn modern_cluster_is_more_latency_skewed_than_power5() {
        // flops-per-message-latency: how many flops fit in one alpha.
        let p5 = MachineConfig::power5();
        let mc = MachineConfig::modern_cluster();
        let skew = |m: &MachineConfig| m.alpha_col / m.gamma3;
        assert!(
            skew(&mc) > 10.0 * skew(&p5),
            "a modern machine wastes far more flops per message: {} vs {}",
            skew(&mc),
            skew(&p5)
        );
    }

    #[test]
    fn hierarchical_preset_has_asymmetric_links() {
        let h = MachineConfig::hierarchical();
        assert!(h.alpha_row < h.alpha_col);
        assert!(h.beta_row < h.beta_col);
        assert!(h.t_msg(100, Link::Row) < h.t_msg(100, Link::Col));
    }

    #[test]
    fn f32_rates_double_flops_and_halve_words() {
        let p = MachineConfig::power5();
        let lo = p.for_precision(Precision::F32);
        assert_eq!(lo.peak_flops(), 2.0 * p.peak_flops());
        assert_eq!(lo.gamma1, p.gamma1 / 2.0);
        assert_eq!(lo.gamma_div, p.gamma_div / 2.0);
        assert_eq!(lo.beta_col, p.beta_col / 2.0);
        // Latency does not improve with narrower words.
        assert_eq!(lo.alpha_col, p.alpha_col);
        assert_eq!(lo.rec_call_overhead, p.rec_call_overhead);
        // F64 is the identity.
        assert_eq!(p.for_precision(Precision::F64), p);
        // A fixed gemm costs exactly half the time at f32.
        assert!((lo.t_gemm(64, 64, 64) - p.t_gemm(64, 64, 64) / 2.0).abs() < 1e-18);
        assert_eq!(Precision::F32.bytes() * 2, Precision::F64.bytes());
        assert_eq!(Precision::F32.name(), "f32");
    }

    #[test]
    fn blas2_rate_switches_at_cache_boundary() {
        let p = MachineConfig::power5();
        // Tiny block: in cache, fast rate; huge block: streaming rate.
        assert_eq!(p.gamma2_for(100, 100), p.gamma2_cache);
        assert_eq!(p.gamma2_for(100_000, 150), p.gamma2);
        // Per-flop time reflects it.
        let t_small = p.t_ger(100, 100) / flops_ger(100, 100);
        let t_big = p.t_ger(100_000, 150) / flops_ger(100_000, 150);
        assert!(t_big > 2.0 * t_small);
    }
}
