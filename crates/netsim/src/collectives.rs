//! Collectives built from point-to-point messages: binomial broadcast and
//! reduce, butterfly all-reduce (the communication pattern of TSLU), and a
//! barrier.
//!
//! A [`Group`] names a subset of ranks (a grid row, a grid column, or the
//! world), the link class its traffic uses, and a tag namespace. Every rank
//! of the group constructs an identical `Group` value, and collective calls
//! must be made in the same order by all members (MPI semantics).
//!
//! The reduction `op` always combines `(low, high)` — the accumulator for
//! the lower-indexed side first — so that the combination *tree* is
//! deterministic: the butterfly all-reduce produces exactly the pairwise
//! halving tree over member indices, which is what the paper's TSLU
//! tournament prescribes and what `calu-core`'s sequential tournament
//! mirrors.

use crate::comm::{Payload, SimComm};
use crate::machine::Link;
use std::cell::Cell;

/// A communicator subset with its own tag namespace and link class.
#[derive(Debug)]
pub struct Group {
    /// Global ranks of the members, in index order.
    ranks: Vec<usize>,
    /// My index within `ranks`.
    me: usize,
    /// Link class used for this group's traffic.
    link: Link,
    base_tag: u64,
    seq: Cell<u64>,
}

impl Group {
    /// Creates a group descriptor. `my_rank` must appear in `ranks`;
    /// `base_tag` must be non-zero and unique per distinct group within one
    /// simulation (tag namespaces must not collide).
    ///
    /// # Panics
    /// If `my_rank` is not a member or `base_tag == 0`.
    pub fn new(ranks: Vec<usize>, my_rank: usize, link: Link, base_tag: u64) -> Self {
        assert!(base_tag != 0, "base_tag 0 is reserved for point-to-point traffic");
        let me = ranks
            .iter()
            .position(|&r| r == my_rank)
            .unwrap_or_else(|| panic!("rank {my_rank} not in group {ranks:?}"));
        Self { ranks, me, link, base_tag, seq: Cell::new(0) }
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    /// My index within the group.
    pub fn my_index(&self) -> usize {
        self.me
    }

    /// Global rank of member `idx`.
    pub fn rank_at(&self, idx: usize) -> usize {
        self.ranks[idx]
    }

    /// The link class used by this group's messages.
    pub fn link(&self) -> Link {
        self.link
    }

    fn next_op_tag(&self) -> u64 {
        let s = self.seq.get();
        self.seq.set(s + 1);
        (self.base_tag << 32) | (s << 8)
    }

    /// Binomial-tree broadcast from member index `root`. Every member calls
    /// this; the root passes the payload, others pass `Payload::Empty` and
    /// receive the data. Returns the broadcast payload on every member.
    ///
    /// Critical-path cost: `ceil(log2 p)` message steps of `words` each.
    pub fn bcast(&self, cm: &mut SimComm, root: usize, payload: Payload, words: usize) -> Payload {
        let p = self.size();
        let tag = self.next_op_tag();
        if p == 1 {
            return payload;
        }
        let rel = (self.me + p - root) % p;
        let mut have = if rel == 0 { payload } else { Payload::Empty };

        // Receive phase: my parent is rel minus my lowest set bit.
        let mut mask = 1usize;
        if rel != 0 {
            while mask < p {
                if rel & mask != 0 {
                    let src_rel = rel - mask;
                    let src = self.ranks[(src_rel + root) % p];
                    let (pl, _w) = cm.recv(src, tag);
                    have = pl;
                    break;
                }
                mask <<= 1;
            }
        } else {
            while mask < p {
                mask <<= 1;
            }
        }
        // Forward phase: halve the mask and send to rel + mask.
        mask >>= 1;
        while mask >= 1 {
            if rel & (mask - 1) == rel % mask && rel & mask == 0 && rel + mask < p {
                let dst = self.ranks[(rel + mask + root) % p];
                cm.send(dst, tag, words, have.clone(), self.link);
            }
            if mask == 1 {
                break;
            }
            mask >>= 1;
        }
        have
    }

    /// Binomial-tree reduce to member index 0. `op(cm, low, high)` combines
    /// the accumulator of the lower-indexed subtree with the higher-indexed
    /// one (and may charge compute time on `cm`). Returns `Some(result)` at
    /// index 0, `None` elsewhere.
    ///
    /// Critical-path cost: `ceil(log2 p)` message steps of `words` each.
    pub fn reduce<F>(
        &self,
        cm: &mut SimComm,
        mine: Payload,
        words: usize,
        mut op: F,
    ) -> Option<Payload>
    where
        F: FnMut(&mut SimComm, Payload, Payload) -> Payload,
    {
        let p = self.size();
        let tag = self.next_op_tag();
        let r = self.me;
        let mut acc = mine;
        let mut mask = 1usize;
        while mask < p {
            if r & mask == 0 {
                let peer = r | mask;
                if peer < p {
                    let (theirs, _w) = cm.recv(self.ranks[peer], tag);
                    acc = op(cm, acc, theirs);
                }
            } else {
                let peer = r & !mask;
                cm.send(self.ranks[peer], tag, words, acc, self.link);
                return None;
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// Butterfly all-reduce — the communication pattern of TSLU (paper
    /// Section 3). Every member ends with the same combined value.
    ///
    /// For non-power-of-two groups the extra members fold their value into
    /// a partner first and receive the final result afterwards (a standard
    /// pre/post step; the paper assumes powers of two).
    ///
    /// Critical-path cost: `floor(log2 p)` exchange steps of `words` each
    /// (+2 steps when `p` is not a power of two), with the combining `op`
    /// executed redundantly by both partners, exactly as TSLU prescribes.
    pub fn allreduce<F>(&self, cm: &mut SimComm, mine: Payload, words: usize, mut op: F) -> Payload
    where
        F: FnMut(&mut SimComm, Payload, Payload) -> Payload,
    {
        let p = self.size();
        let tag = self.next_op_tag();
        if p == 1 {
            return mine;
        }
        let p2 = prev_pow2(p);
        let extra = p - p2;
        let r = self.me;

        let mut acc = mine;
        // Fold-in: high ranks donate to their low partner.
        if r >= p2 {
            cm.send(self.ranks[r - p2], tag | 1, words, acc, self.link);
            let (result, _w) = cm.recv(self.ranks[r - p2], tag | 2);
            return result;
        }
        if r < extra {
            let (theirs, _w) = cm.recv(self.ranks[r + p2], tag | 1);
            acc = op(cm, acc, theirs);
        }

        // Butterfly over the power-of-two core.
        let mut level = 0u64;
        let mut mask = 1usize;
        while mask < p2 {
            let partner = r ^ mask;
            let (theirs, _w) =
                cm.sendrecv(self.ranks[partner], tag | (8 + level), words, acc.clone(), self.link);
            acc = if r < partner { op(cm, acc, theirs) } else { op(cm, theirs, acc) };
            mask <<= 1;
            level += 1;
        }

        // Fold-out.
        if r < extra {
            cm.send(self.ranks[r + p2], tag | 2, words, acc.clone(), self.link);
        }
        acc
    }

    /// Barrier: an all-reduce of empty payloads.
    pub fn barrier(&self, cm: &mut SimComm) {
        self.allreduce(cm, Payload::Empty, 0, |_cm, _a, _b| Payload::Empty);
    }

    /// Flat gather to member index `root`: every other member sends its
    /// payload straight to the root. Returns `Some(items)` at the root
    /// (indexed by member), `None` elsewhere.
    ///
    /// Under the postal model, senders serialize their own injections but
    /// the root only waits for the latest arrival; a flat gather's `O(p)`
    /// pain therefore shows up in whatever serial *combine* the root does
    /// next (as in the flat-tournament strawman), not in the wire time.
    pub fn gather(
        &self,
        cm: &mut SimComm,
        root: usize,
        mine: Payload,
        words: usize,
    ) -> Option<Vec<Payload>> {
        let p = self.size();
        let tag = self.next_op_tag();
        if self.me == root {
            let mut items: Vec<Payload> = Vec::with_capacity(p);
            for idx in 0..p {
                if idx == root {
                    items.push(mine.clone());
                } else {
                    let (pl, _w) = cm.recv(self.ranks[idx], tag);
                    items.push(pl);
                }
            }
            Some(items)
        } else {
            cm.send(self.ranks[root], tag, words, mine, self.link);
            None
        }
    }

    /// Flat scatter from member index `root`: the root sends `items[idx]`
    /// to each member `idx` (its own slot is returned directly). Non-roots
    /// pass `None` and receive their slot.
    ///
    /// # Panics
    /// At the root if `items` is missing or not `p` long.
    pub fn scatter(
        &self,
        cm: &mut SimComm,
        root: usize,
        items: Option<Vec<Payload>>,
        words: usize,
    ) -> Payload {
        let p = self.size();
        let tag = self.next_op_tag();
        if self.me == root {
            let items = items.expect("root must supply items");
            assert_eq!(items.len(), p, "one item per member");
            let mut mine = Payload::Empty;
            for (idx, item) in items.into_iter().enumerate() {
                if idx == root {
                    mine = item;
                } else {
                    cm.send(self.ranks[idx], tag, words, item, self.link);
                }
            }
            mine
        } else {
            cm.recv(self.ranks[root], tag).0
        }
    }

    /// Ring all-gather: in `p - 1` steps each member forwards the block it
    /// received in the previous step to its successor, ending with every
    /// member holding all `p` blocks indexed by origin.
    ///
    /// Cost: `(p-1)(α + w·β)` — latency-worse than a butterfly
    /// (`log2 p` steps) but bandwidth-optimal and contention-free, which is
    /// why MPI uses it for large payloads.
    pub fn allgather(&self, cm: &mut SimComm, mine: Payload, words: usize) -> Vec<Payload> {
        let p = self.size();
        let tag = self.next_op_tag();
        let mut items: Vec<Payload> = vec![Payload::Empty; p];
        items[self.me] = mine;
        if p == 1 {
            return items;
        }
        let next = self.ranks[(self.me + 1) % p];
        let prev = self.ranks[(self.me + p - 1) % p];
        for s in 0..p - 1 {
            // Block that originated at me - s (mod p) moves forward.
            let out_idx = (self.me + p - s) % p;
            let in_idx = (self.me + p - s - 1) % p;
            cm.send(next, tag | (s as u64), words, items[out_idx].clone(), self.link);
            let (pl, _w) = cm.recv(prev, tag | (s as u64));
            items[in_idx] = pl;
        }
        items
    }

    /// Pipelined ring broadcast from member index `root`: the payload is cut
    /// into `nseg` segments that stream around the ring, so the cost is
    /// `(p - 2 + nseg)·(α + (w/nseg)·β)` instead of the binomial tree's
    /// `log2(p)·(α + w·β)`.
    ///
    /// For wide panels (`w·β ≫ α`) and large `nseg` this approaches one
    /// bandwidth term end to end — the reason ScaLAPACK's panel broadcasts
    /// offer ring variants. For [`Payload::Data`] the segmentation is
    /// physical; the reassembled payload is returned by every member.
    ///
    /// # Panics
    /// If `nseg == 0`.
    pub fn bcast_ring(
        &self,
        cm: &mut SimComm,
        root: usize,
        payload: Payload,
        words: usize,
        nseg: usize,
    ) -> Payload {
        assert!(nseg > 0, "need at least one segment");
        let p = self.size();
        let tag = self.next_op_tag();
        if p == 1 {
            return payload;
        }
        let rel = (self.me + p - root) % p;
        let next_rel = (rel + 1) % p;
        let next = self.ranks[(self.me + 1) % p];
        let prev = self.ranks[(self.me + p - 1) % p];
        let seg_words = words.div_ceil(nseg).max(1);

        // Physical segmentation (by f64 count) when data is present.
        let segments: Vec<Payload> = match (&payload, rel) {
            (Payload::Data(v), 0) => {
                let chunk = v.len().div_ceil(nseg).max(1);
                (0..nseg)
                    .map(|s| {
                        let lo = (s * chunk).min(v.len());
                        let hi = ((s + 1) * chunk).min(v.len());
                        Payload::Data(v[lo..hi].to_vec())
                    })
                    .collect()
            }
            _ => vec![Payload::Empty; nseg],
        };

        let mut collected: Vec<Payload> = Vec::with_capacity(nseg);
        for (s, seg) in segments.into_iter().enumerate() {
            let stag = tag | (s as u64);
            if rel == 0 {
                cm.send(next, stag, seg_words, seg, self.link);
            } else {
                let (pl, _w) = cm.recv(prev, stag);
                if next_rel != 0 {
                    cm.send(next, stag, seg_words, pl.clone(), self.link);
                }
                collected.push(pl);
            }
        }
        if rel == 0 {
            return payload;
        }
        // Reassemble.
        if collected.iter().all(|s| matches!(s, Payload::Empty)) {
            Payload::Empty
        } else {
            let mut v = Vec::new();
            for s in collected {
                if let Payload::Data(mut d) = s {
                    v.append(&mut d);
                }
            }
            Payload::Data(v)
        }
    }
}

/// Largest power of two `<= n` (`n >= 1`).
pub fn prev_pow2(n: usize) -> usize {
    assert!(n >= 1);
    1 << (usize::BITS - 1 - n.leading_zeros())
}

/// `ceil(log2 n)` (`n >= 1`) — the number of tree levels a collective over
/// `n` ranks traverses, i.e. the paper's `log2 P` message count per step.
pub fn ceil_log2(n: usize) -> usize {
    assert!(n >= 1);
    (usize::BITS - (n - 1).leading_zeros()) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use crate::runner::run_sim;

    fn world(cm: &SimComm) -> Group {
        Group::new((0..cm.size()).collect(), cm.rank(), Link::Col, 3_000_000)
    }

    fn scalar(v: f64) -> Payload {
        Payload::Data(vec![v])
    }

    #[test]
    fn bcast_reaches_all_ranks_any_root() {
        for p in [1usize, 2, 3, 4, 5, 7, 8, 16] {
            for root in [0, p / 2, p - 1] {
                let (_r, results) = run_sim(p, MachineConfig::ideal(), |cm| {
                    let g = world(cm);
                    let mine = if g.my_index() == root { scalar(42.0) } else { Payload::Empty };
                    g.bcast(cm, root, mine, 1).into_data()[0]
                });
                assert!(results.iter().all(|&v| v == 42.0), "p={p} root={root}: {results:?}");
            }
        }
    }

    #[test]
    fn reduce_sums_to_root() {
        for p in [1usize, 2, 3, 5, 8, 13] {
            let (_r, results) = run_sim(p, MachineConfig::ideal(), |cm| {
                let g = world(cm);
                let r = g.reduce(cm, scalar(cm.rank() as f64), 1, |_cm, a, b| {
                    scalar(a.into_data()[0] + b.into_data()[0])
                });
                r.map(|p| p.into_data()[0])
            });
            let expect = (p * (p - 1) / 2) as f64;
            assert_eq!(results[0], Some(expect), "p={p}");
            assert!(results[1..].iter().all(Option::is_none));
        }
    }

    #[test]
    fn allreduce_every_rank_gets_total() {
        for p in [1usize, 2, 3, 4, 6, 8, 12, 16] {
            let (_r, results) = run_sim(p, MachineConfig::ideal(), |cm| {
                let g = world(cm);
                g.allreduce(cm, scalar((cm.rank() + 1) as f64), 1, |_cm, a, b| {
                    scalar(a.into_data()[0] + b.into_data()[0])
                })
                .into_data()[0]
            });
            let expect = (p * (p + 1) / 2) as f64;
            assert!(results.iter().all(|&v| v == expect), "p={p}: {results:?}");
        }
    }

    #[test]
    fn allreduce_combination_tree_is_index_ordered() {
        // With a non-commutative op (string-like concatenation encoded as
        // digit sequences) the result must equal the pairwise-halving tree.
        // op(low, high) concatenates, so any ordering bug changes digits.
        let p = 8;
        let (_r, results) = run_sim(p, MachineConfig::ideal(), |cm| {
            let g = world(cm);
            let out = g.allreduce(cm, Payload::Data(vec![cm.rank() as f64]), 1, |_cm, a, b| {
                let mut v = a.into_data();
                v.extend(b.into_data());
                Payload::Data(v)
            });
            out.into_data()
        });
        for r in &results {
            assert_eq!(r, &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        }
    }

    #[test]
    fn butterfly_costs_log_p_steps() {
        let m = MachineConfig::power5();
        let alpha = m.alpha_col;
        let beta = m.beta_col;
        let words = 64usize;
        let (report, _) = run_sim(8, m, |cm| {
            let g = world(cm);
            g.allreduce(cm, Payload::Empty, 64, |_cm, a, _b| a);
        });
        // Each of the 3 butterfly levels is one synchronized exchange step:
        // both partners send (charging α+wβ) and the partner's message
        // arrives at the same instant, so the level costs one message time
        // — the paper's "log2 P identical steps" approximation.
        let per_msg = alpha + words as f64 * beta;
        let expect = 3.0 * per_msg;
        let got = report.makespan();
        assert!(
            (got - expect).abs() < per_msg * 0.51,
            "makespan {got} not within one step of {expect}"
        );
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let (report, _) = run_sim(4, MachineConfig::ideal(), |cm| {
            cm.compute(cm.rank() as f64, 0.0);
            let g = world(cm);
            g.barrier(cm);
            cm.now()
        });
        // After the barrier every clock is at least the slowest pre-barrier
        // clock (3.0) — with an ideal network, exactly 3.0.
        for r in &report.per_rank {
            assert!(r.time >= 3.0 - 1e-12);
        }
    }

    #[test]
    fn prev_pow2_values() {
        assert_eq!(prev_pow2(1), 1);
        assert_eq!(prev_pow2(2), 2);
        assert_eq!(prev_pow2(3), 2);
        assert_eq!(prev_pow2(8), 8);
        assert_eq!(prev_pow2(9), 8);
        assert_eq!(prev_pow2(1023), 512);
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(64), 6);
        assert_eq!(ceil_log2(65), 7);
    }

    #[test]
    fn gather_collects_in_member_order() {
        for p in [1usize, 2, 3, 5, 8] {
            for root in [0, p - 1] {
                let (_r, results) = run_sim(p, MachineConfig::ideal(), |cm| {
                    let g = world(cm);
                    let items = g.gather(cm, root, scalar(cm.rank() as f64 + 1.0), 1);
                    items.map(|v| v.into_iter().map(|pl| pl.into_data()[0]).collect::<Vec<_>>())
                });
                for (rank, res) in results.into_iter().enumerate() {
                    if rank == root {
                        let want: Vec<f64> = (0..p).map(|i| i as f64 + 1.0).collect();
                        assert_eq!(res, Some(want), "p={p} root={root}");
                    } else {
                        assert_eq!(res, None);
                    }
                }
            }
        }
    }

    #[test]
    fn scatter_delivers_each_members_slot() {
        for p in [1usize, 2, 4, 7] {
            let (_r, results) = run_sim(p, MachineConfig::ideal(), |cm| {
                let g = world(cm);
                let items =
                    (g.my_index() == 0).then(|| (0..p).map(|i| scalar(100.0 + i as f64)).collect());
                g.scatter(cm, 0, items, 1).into_data()[0]
            });
            let want: Vec<f64> = (0..p).map(|i| 100.0 + i as f64).collect();
            assert_eq!(results, want, "p={p}");
        }
    }

    #[test]
    fn allgather_every_rank_has_all_blocks_in_origin_order() {
        for p in [1usize, 2, 3, 6, 8] {
            let (_r, results) = run_sim(p, MachineConfig::ideal(), |cm| {
                let g = world(cm);
                let items = g.allgather(cm, scalar(cm.rank() as f64), 1);
                items.into_iter().map(|pl| pl.into_data()[0]).collect::<Vec<_>>()
            });
            let want: Vec<f64> = (0..p).map(|i| i as f64).collect();
            for (rank, res) in results.into_iter().enumerate() {
                assert_eq!(res, want, "p={p} rank={rank}");
            }
        }
    }

    #[test]
    fn allgather_costs_p_minus_one_steps() {
        let p = 8;
        let words = 50;
        let m = MachineConfig::power5();
        let per_msg = m.t_msg(words, Link::Col);
        let (report, _) = run_sim(p, m, |cm| {
            let g = world(cm);
            g.allgather(cm, Payload::Empty, words);
        });
        let expect = (p - 1) as f64 * per_msg;
        let got = report.makespan();
        assert!(
            (got - expect).abs() < per_msg * 1.01,
            "ring allgather: {got} vs expected {expect}"
        );
    }

    #[test]
    fn ring_bcast_delivers_payload_to_all() {
        for p in [2usize, 3, 5, 8] {
            for nseg in [1usize, 2, 4] {
                let (_r, results) = run_sim(p, MachineConfig::ideal(), |cm| {
                    let g = world(cm);
                    let data: Vec<f64> = (0..10).map(|i| i as f64).collect();
                    let mine =
                        if g.my_index() == 1 % p { Payload::Data(data) } else { Payload::Empty };
                    g.bcast_ring(cm, 1 % p, mine, 10, nseg).into_data()
                });
                let want: Vec<f64> = (0..10).map(|i| i as f64).collect();
                for res in results {
                    assert_eq!(res, want, "p={p} nseg={nseg}");
                }
            }
        }
    }

    #[test]
    fn pipelined_ring_beats_tree_for_fat_messages_on_big_rings() {
        // With w·β >> α and enough segments, the ring's end-to-end time
        // approaches one bandwidth term while the binomial tree pays
        // log2(p) full transfers.
        let p = 16;
        let words = 200_000;
        let m = MachineConfig::power5();
        let (ring, _) = run_sim(p, m.clone(), |cm| {
            let g = world(cm);
            g.bcast_ring(cm, 0, Payload::Empty, words, 32);
        });
        let (tree, _) = run_sim(p, m, |cm| {
            let g = world(cm);
            g.bcast(cm, 0, Payload::Empty, words);
        });
        assert!(
            ring.makespan() < 0.75 * tree.makespan(),
            "ring {} vs tree {}",
            ring.makespan(),
            tree.makespan()
        );
    }

    #[test]
    fn tree_beats_ring_for_small_messages() {
        // Latency-bound regime: log2(p) hops beat p-1 hops.
        let p = 16;
        let words = 1;
        let m = MachineConfig::power5();
        let (ring, _) = run_sim(p, m.clone(), |cm| {
            let g = world(cm);
            g.bcast_ring(cm, 0, Payload::Empty, words, 1);
        });
        let (tree, _) = run_sim(p, m, |cm| {
            let g = world(cm);
            g.bcast(cm, 0, Payload::Empty, words);
        });
        assert!(tree.makespan() < 0.5 * ring.makespan());
    }
}
