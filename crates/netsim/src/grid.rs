//! 2D process grids and block-cyclic distribution maps (the ScaLAPACK
//! `Pr x Pc` layout the paper uses).

use crate::collectives::Group;
use crate::machine::Link;

/// A `Pr x Pc` process grid with column-major rank ordering
/// (`rank = pcol * pr + prow`, BLACS "C" order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid {
    /// Number of process rows (`Pr`).
    pub pr: usize,
    /// Number of process columns (`Pc`).
    pub pc: usize,
}

impl Grid {
    /// Creates a grid; both dimensions must be positive.
    pub fn new(pr: usize, pc: usize) -> Self {
        assert!(pr > 0 && pc > 0, "grid dimensions must be positive");
        Self { pr, pc }
    }

    /// Total ranks.
    pub fn size(&self) -> usize {
        self.pr * self.pc
    }

    /// Rank of grid position `(prow, pcol)`.
    pub fn rank_of(&self, prow: usize, pcol: usize) -> usize {
        debug_assert!(prow < self.pr && pcol < self.pc);
        pcol * self.pr + prow
    }

    /// Grid position of `rank`.
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        debug_assert!(rank < self.size());
        (rank % self.pr, rank / self.pr)
    }

    /// Group of all ranks in `rank`'s grid column (communication along
    /// columns uses the `αc`/`βc` link). Tag namespaces are disjoint per
    /// column.
    pub fn col_group(&self, rank: usize) -> Group {
        let (_prow, pcol) = self.coords(rank);
        let ranks: Vec<usize> = (0..self.pr).map(|r| self.rank_of(r, pcol)).collect();
        Group::new(ranks, rank, Link::Col, 1_000 + pcol as u64)
    }

    /// Group of all ranks in `rank`'s grid row (`αr`/`βr` link).
    pub fn row_group(&self, rank: usize) -> Group {
        let (prow, _pcol) = self.coords(rank);
        let ranks: Vec<usize> = (0..self.pc).map(|c| self.rank_of(prow, c)).collect();
        Group::new(ranks, rank, Link::Row, 100_000 + prow as u64)
    }

    /// Group of every rank in the grid (column link class).
    pub fn world_group(&self, rank: usize) -> Group {
        Group::new((0..self.size()).collect(), rank, Link::Col, 3_000_000)
    }
}

/// ScaLAPACK `NUMROC`: how many of `n` items, dealt in blocks of `nb`
/// round-robin over `nprocs` processes starting at process 0, land on
/// process `iproc`.
pub fn numroc(n: usize, nb: usize, iproc: usize, nprocs: usize) -> usize {
    assert!(nb > 0 && nprocs > 0 && iproc < nprocs);
    let nblocks = n / nb;
    let mut num = (nblocks / nprocs) * nb;
    let extra_blocks = nblocks % nprocs;
    if iproc < extra_blocks {
        num += nb;
    } else if iproc == extra_blocks {
        num += n % nb;
    }
    num
}

/// Maps a global index to `(owner process, local index)` under the
/// block-cyclic distribution.
pub fn global_to_local(g: usize, nb: usize, nprocs: usize) -> (usize, usize) {
    let block = g / nb;
    let owner = block % nprocs;
    let local = (block / nprocs) * nb + g % nb;
    (owner, local)
}

/// Maps a local index on `iproc` back to the global index.
pub fn local_to_global(l: usize, nb: usize, iproc: usize, nprocs: usize) -> usize {
    let lblock = l / nb;
    (lblock * nprocs + iproc) * nb + l % nb
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_round_trip() {
        let g = Grid::new(4, 8);
        for rank in 0..g.size() {
            let (r, c) = g.coords(rank);
            assert_eq!(g.rank_of(r, c), rank);
        }
    }

    #[test]
    fn column_major_rank_order() {
        let g = Grid::new(2, 3);
        assert_eq!(g.rank_of(0, 0), 0);
        assert_eq!(g.rank_of(1, 0), 1);
        assert_eq!(g.rank_of(0, 1), 2);
        assert_eq!(g.rank_of(1, 2), 5);
    }

    #[test]
    fn numroc_conserves_total() {
        for &(n, nb, p) in &[(100, 7, 4), (64, 16, 4), (1, 50, 8), (1000, 3, 7), (0, 5, 3)] {
            let total: usize = (0..p).map(|i| numroc(n, nb, i, p)).sum();
            assert_eq!(total, n, "n={n} nb={nb} p={p}");
        }
    }

    #[test]
    fn numroc_matches_explicit_dealing() {
        let (n, nb, p) = (53, 4, 3);
        let mut counts = vec![0usize; p];
        for g in 0..n {
            let (owner, _l) = global_to_local(g, nb, p);
            counts[owner] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert_eq!(c, numroc(n, nb, i, p), "proc {i}");
        }
    }

    #[test]
    fn local_global_round_trip() {
        let (nb, p) = (5, 4);
        for g in 0..200 {
            let (owner, l) = global_to_local(g, nb, p);
            assert_eq!(local_to_global(l, nb, owner, p), g);
        }
    }

    #[test]
    fn local_indices_are_dense() {
        // Every process's local indices 0..numroc map to strictly
        // increasing globals.
        let (n, nb, p) = (40, 3, 4);
        for proc in 0..p {
            let cnt = numroc(n, nb, proc, p);
            let mut last = None;
            for l in 0..cnt {
                let g = local_to_global(l, nb, proc, p);
                assert!(g < n);
                if let Some(prev) = last {
                    assert!(g > prev);
                }
                last = Some(g);
            }
        }
    }
}
