//! Spawns one real thread per simulated rank and collects the report.

use crate::comm::{Envelope, RankStats, SimComm};
use crate::machine::MachineConfig;
use crate::trace::RankTrace;
use crossbeam::channel::unbounded;
use std::sync::Arc;

/// Outcome of a simulation: per-rank accounting plus aggregates.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Accounting per rank, indexed by rank id.
    pub per_rank: Vec<RankStats>,
}

impl SimReport {
    /// Parallel completion time: the maximum rank clock (the quantity the
    /// paper's tables compare).
    pub fn makespan(&self) -> f64 {
        self.per_rank.iter().fold(0.0_f64, |m, r| m.max(r.time))
    }

    /// Total messages sent by all ranks.
    pub fn total_msgs(&self) -> u64 {
        self.per_rank.iter().map(|r| r.msgs_sent).sum()
    }

    /// Total 8-byte words sent by all ranks.
    pub fn total_words(&self) -> u64 {
        self.per_rank.iter().map(|r| r.words_sent).sum()
    }

    /// Total modeled flops over all ranks.
    pub fn total_flops(&self) -> f64 {
        self.per_rank.iter().map(|r| r.flops).sum()
    }

    /// Aggregate GFLOP/s: total flops over makespan.
    pub fn gflops(&self) -> f64 {
        let t = self.makespan();
        if t <= 0.0 {
            0.0
        } else {
            self.total_flops() / t / 1e9
        }
    }
}

/// Runs `f` as an SPMD program on `p` simulated ranks over `machine`,
/// returning the report and each rank's return value (indexed by rank).
///
/// The closure receives this rank's [`SimComm`]; real data sent through the
/// communicator flows between the threads, while time is purely virtual.
///
/// ```
/// use calu_netsim::{run_sim, Link, MachineConfig, Payload};
///
/// // Rank 0 pings rank 1; the virtual clock prices the messages.
/// let (report, _) = run_sim(2, MachineConfig::power5(), |cm| {
///     if cm.rank() == 0 {
///         cm.send(1, 0, 100, Payload::Data(vec![1.0; 100]), Link::Col);
///     } else {
///         let (data, words) = cm.recv(0, 0);
///         assert_eq!(words, 100);
///         assert_eq!(data.into_data()[0], 1.0);
///     }
/// });
/// assert_eq!(report.total_msgs(), 1);
/// assert!(report.makespan() > 4.5e-6, "at least one POWER5 latency");
/// ```
///
/// # Panics
/// Propagates panics from rank closures (the first one observed).
pub fn run_sim<F, R>(p: usize, machine: MachineConfig, f: F) -> (SimReport, Vec<R>)
where
    F: Fn(&mut SimComm) -> R + Sync,
    R: Send,
{
    let (report, _traces, results) = run_sim_inner(p, machine, f, false);
    (report, results)
}

/// [`run_sim`] with per-rank event tracing enabled; additionally returns
/// each rank's timeline for [`render_gantt`](crate::trace::render_gantt)
/// and attribution. Tracing allocates one segment per clock advance — use
/// it on presentation-sized configurations, not paper-scale sweeps.
///
/// # Panics
/// Propagates panics from rank closures (the first one observed).
pub fn run_sim_traced<F, R>(
    p: usize,
    machine: MachineConfig,
    f: F,
) -> (SimReport, Vec<RankTrace>, Vec<R>)
where
    F: Fn(&mut SimComm) -> R + Sync,
    R: Send,
{
    run_sim_inner(p, machine, f, true)
}

fn run_sim_inner<F, R>(
    p: usize,
    machine: MachineConfig,
    f: F,
    traced: bool,
) -> (SimReport, Vec<RankTrace>, Vec<R>)
where
    F: Fn(&mut SimComm) -> R + Sync,
    R: Send,
{
    assert!(p > 0, "need at least one rank");
    let machine = Arc::new(machine);

    let mut senders = Vec::with_capacity(p);
    let mut inboxes = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = unbounded::<Envelope>();
        senders.push(tx);
        inboxes.push(rx);
    }

    let mut comms: Vec<SimComm> = inboxes
        .into_iter()
        .enumerate()
        .map(|(rank, inbox)| SimComm::new(rank, p, Arc::clone(&machine), senders.clone(), inbox))
        .collect();
    // Drop the original senders so channels close when comms drop.
    drop(senders);

    let f = &f;
    let mut out: Vec<Option<(RankStats, RankTrace, R)>> = (0..p).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for mut cm in comms.drain(..) {
            handles.push(scope.spawn(move || {
                if traced {
                    cm.enable_trace();
                }
                let r = f(&mut cm);
                let trace = RankTrace { events: cm.take_trace() };
                (cm.into_stats(), trace, r)
            }));
        }
        for (slot, h) in out.iter_mut().zip(handles) {
            match h.join() {
                Ok(tuple) => *slot = Some(tuple),
                Err(e) => std::panic::resume_unwind(e),
            }
        }
    });

    let mut per_rank = Vec::with_capacity(p);
    let mut traces = Vec::with_capacity(p);
    let mut results = Vec::with_capacity(p);
    for slot in out {
        let (stats, trace, r) = slot.expect("rank produced no result");
        per_rank.push(stats);
        traces.push(trace);
        results.push(r);
    }
    (SimReport { per_rank }, traces, results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Payload;
    use crate::machine::{Link, MachineConfig};

    #[test]
    fn results_are_rank_ordered() {
        let (_r, results) = run_sim(8, MachineConfig::ideal(), |cm| cm.rank() * 10);
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn report_aggregates_messages() {
        let (report, _) = run_sim(4, MachineConfig::ideal(), |cm| {
            let next = (cm.rank() + 1) % cm.size();
            let prev = (cm.rank() + cm.size() - 1) % cm.size();
            cm.send(next, 0, 10, Payload::Empty, Link::Row);
            cm.recv(prev, 0);
        });
        assert_eq!(report.total_msgs(), 4);
        assert_eq!(report.total_words(), 40);
    }

    #[test]
    fn single_rank_runs_without_channels() {
        let (report, results) = run_sim(1, MachineConfig::ideal(), |cm| {
            cm.compute(1.0, 42.0);
            "done"
        });
        assert_eq!(results, vec!["done"]);
        assert_eq!(report.makespan(), 1.0);
        assert_eq!(report.total_flops(), 42.0);
    }

    #[test]
    fn makespan_is_max_clock() {
        let (report, _) = run_sim(3, MachineConfig::ideal(), |cm| {
            cm.compute(cm.rank() as f64, 0.0);
        });
        assert_eq!(report.makespan(), 2.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let (report, _) = run_sim(4, MachineConfig::power5(), |cm| {
                // All-to-one then one-to-all with data.
                if cm.rank() == 0 {
                    for src in 1..cm.size() {
                        let (p, _) = cm.recv(src, 1);
                        assert_eq!(p.physical_len(), 5);
                    }
                    for dst in 1..cm.size() {
                        cm.send(dst, 2, 5, Payload::Data(vec![0.0; 5]), Link::Col);
                    }
                } else {
                    cm.send(0, 1, 5, Payload::Data(vec![cm.rank() as f64; 5]), Link::Col);
                    cm.recv(0, 2);
                }
            });
            report.per_rank.iter().map(|r| r.time).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
