//! Event tracing and time attribution for simulated runs.
//!
//! A traced run ([`run_sim_traced`](crate::runner::run_sim_traced)) records
//! every rank's timeline as a sequence of [`TraceEvent`] segments —
//! compute, message injection, idle wait — in virtual time. Two consumers:
//!
//! * [`render_gantt`] draws the timelines as a fixed-width text chart, which
//!   makes the paper's latency argument *visible*: under `PDGETF2` the
//!   panel column is a picket fence of sends and idles, under TSLU it is a
//!   handful of exchanges around solid compute.
//! * [`TimeBreakdown`] attributes a run's makespan to compute / latency (α)
//!   / bandwidth (β) / idle shares — the quantities the paper's Equations
//!   (1)-(3) separate, and the evidence for "the effect is significant when
//!   the latency time is an important factor of the overall time"
//!   (Abstract).

use crate::comm::RankStats;
use crate::runner::SimReport;
use calu_obs::Span;

/// What a rank was doing during a trace segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegKind {
    /// Modeled kernel time ([`SimComm::compute`](crate::SimComm::compute)).
    Compute,
    /// Message injection (`α + w·β` per message, including charged rounds).
    Send,
    /// Blocked waiting for an arrival.
    Idle,
}

/// One contiguous segment of a rank's virtual timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Segment class.
    pub kind: SegKind,
    /// Virtual start time, seconds.
    pub start: f64,
    /// Virtual end time, seconds (`end > start`).
    pub end: f64,
}

impl TraceEvent {
    /// Segment duration in virtual seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// A whole rank's recorded timeline.
#[derive(Debug, Clone, Default)]
pub struct RankTrace {
    /// Segments in non-decreasing start order.
    pub events: Vec<TraceEvent>,
}

impl RankTrace {
    /// Total traced duration per kind.
    pub fn total(&self, kind: SegKind) -> f64 {
        self.events.iter().filter(|e| e.kind == kind).map(TraceEvent::duration).sum()
    }

    /// End of the last segment (0 for an empty trace).
    pub fn end(&self) -> f64 {
        self.events.iter().fold(0.0_f64, |m, e| m.max(e.end))
    }
}

/// Attribution of a run's time to the paper's cost classes.
///
/// Shares are normalized against the *sum of rank clocks* (processor-time),
/// so they answer "where did the machine's time go" rather than "what was
/// the single critical path doing".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeBreakdown {
    /// Fraction of processor-time in modeled compute (γ terms).
    pub compute: f64,
    /// Fraction in message latency (α terms) — what ca-pivoting reduces.
    pub latency: f64,
    /// Fraction in message volume (β terms) — equal for CALU and `PDGETRF`
    /// (paper Section 5: "both algorithms have the same communication
    /// volume").
    pub bandwidth: f64,
    /// Fraction blocked waiting on other ranks.
    pub idle: f64,
}

impl TimeBreakdown {
    /// Attribution for a single rank.
    pub fn from_stats(s: &RankStats) -> Self {
        let total = s.time.max(f64::MIN_POSITIVE);
        Self {
            compute: s.compute_time / total,
            latency: s.alpha_time / total,
            bandwidth: s.beta_time / total,
            idle: s.idle_time / total,
        }
    }

    /// Attribution aggregated over all ranks of a report (processor-time
    /// weighted).
    pub fn from_report(r: &SimReport) -> Self {
        let total: f64 = r.per_rank.iter().map(|s| s.time).sum::<f64>().max(f64::MIN_POSITIVE);
        let sum = |f: fn(&RankStats) -> f64| r.per_rank.iter().map(f).sum::<f64>() / total;
        Self {
            compute: sum(|s| s.compute_time),
            latency: sum(|s| s.alpha_time),
            bandwidth: sum(|s| s.beta_time),
            idle: sum(|s| s.idle_time),
        }
    }

    /// Shares formatted as one line, e.g.
    /// `compute 62.1%  latency 24.3%  bandwidth 9.0%  idle 4.6%`.
    pub fn one_line(&self) -> String {
        format!(
            "compute {:5.1}%  latency {:5.1}%  bandwidth {:5.1}%  idle {:5.1}%",
            100.0 * self.compute,
            100.0 * self.latency,
            100.0 * self.bandwidth,
            100.0 * self.idle
        )
    }
}

/// Glyphs used by [`render_gantt`], by dominant [`SegKind`] in each cell:
/// `#` compute, `>` send, `.` idle, ` ` nothing recorded.
const GLYPHS: [(SegKind, char); 3] =
    [(SegKind::Compute, '#'), (SegKind::Send, '>'), (SegKind::Idle, '.')];

/// Renders per-rank timelines as a text Gantt chart `width` characters
/// wide. Each cell shows the kind that occupied most of that cell's time
/// span; the header carries the time scale and a legend. Rows are labeled
/// `r0`, `r1`, … — use [`render_gantt_labeled`] for custom row labels
/// (e.g. grid coordinates next to runtime workers in a dual-layer chart).
///
/// # Panics
/// If `width == 0`.
pub fn render_gantt(traces: &[RankTrace], width: usize) -> String {
    let labels: Vec<String> = (0..traces.len()).map(|r| format!("r{r}")).collect();
    render_gantt_labeled(traces, &labels, width)
}

/// [`render_gantt`] with caller-supplied row labels (padded to the longest
/// label), so timelines from different layers — simulated grid ranks,
/// modeled distributed-DAG ranks, runtime executor workers — can stack in
/// one legible chart.
///
/// # Panics
/// If `width == 0` or the label count differs from the trace count.
pub fn render_gantt_labeled(traces: &[RankTrace], labels: &[String], width: usize) -> String {
    assert!(width > 0, "gantt width must be positive");
    assert_eq!(labels.len(), traces.len(), "one label per trace");
    let t_end = traces.iter().map(RankTrace::end).fold(0.0_f64, f64::max);
    let pad = labels.iter().map(String::len).max().unwrap_or(0).max(3);
    let mut out = String::new();
    out.push_str(&format!("time 0 .. {:.3e} s   ('#' compute, '>' send, '.' idle)\n", t_end));
    if t_end <= 0.0 {
        return out;
    }
    let cell = t_end / width as f64;
    for (rank, tr) in traces.iter().enumerate() {
        let mut occupancy = vec![[0.0_f64; 3]; width];
        for e in &tr.events {
            let k = GLYPHS.iter().position(|(g, _)| *g == e.kind).expect("known kind");
            // Clip the segment onto each overlapped cell.
            let first = ((e.start / cell) as usize).min(width - 1);
            let last = ((e.end / cell) as usize).min(width - 1);
            for (c, occ) in occupancy.iter_mut().enumerate().take(last + 1).skip(first) {
                let lo = (c as f64) * cell;
                let hi = lo + cell;
                let overlap = (e.end.min(hi) - e.start.max(lo)).max(0.0);
                occ[k] += overlap;
            }
        }
        let mut row = String::with_capacity(width);
        for occ in &occupancy {
            let (best, val) =
                occ.iter().enumerate().fold((0usize, 0.0_f64), |(bi, bv), (i, &v)| {
                    if v > bv {
                        (i, v)
                    } else {
                        (bi, bv)
                    }
                });
            row.push(if val > 0.0 { GLYPHS[best].1 } else { ' ' });
        }
        out.push_str(&format!("{:<pad$} |{row}|\n", labels[rank]));
    }
    out
}

// ---------------------------------------------------------------------------
// Obs interop: Gantt timelines ↔ structured spans
// ---------------------------------------------------------------------------

/// Converts per-rank Gantt timelines into [`calu_obs`] spans (pid = rank
/// index, tid = 0, virtual seconds → µs), ready for Chrome-trace export
/// alongside real executor spans. `Idle` segments are dropped — a span
/// records work; idle is the gap between spans, which trace viewers show
/// natively. Output is sorted by start time, as
/// [`calu_obs::chrome_trace`] expects.
pub fn traces_to_spans(traces: &[RankTrace]) -> Vec<Span> {
    let mut out: Vec<Span> = traces
        .iter()
        .enumerate()
        .flat_map(|(rank, tr)| {
            tr.events.iter().filter(|e| e.kind != SegKind::Idle).map(move |e| Span {
                name: match e.kind {
                    SegKind::Compute => "compute".to_string(),
                    SegKind::Send => "send".to_string(),
                    SegKind::Idle => unreachable!("idle segments are filtered"),
                },
                cat: "sim",
                pid: rank as u32,
                tid: 0,
                ts_us: e.start * 1e6,
                dur_us: e.duration() * 1e6,
            })
        })
        .collect();
    out.sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us).then(a.pid.cmp(&b.pid)).then(a.tid.cmp(&b.tid)));
    out
}

/// The reverse direction: buckets spans into one [`RankTrace`] lane per
/// `(pid, tid)` — so *measured* executor timelines can reuse the text
/// Gantt renderer that normally draws modeled simulator time. Returns the
/// lanes with `"r<pid>.w<tid>"` labels for [`render_gantt_labeled`], in
/// `(pid, tid)` order. Spans whose name or category mentions a send
/// render as `>` segments, everything else as compute; gaps stay blank.
pub fn spans_to_traces(spans: &[Span]) -> (Vec<RankTrace>, Vec<String>) {
    let mut lanes: Vec<(u32, u32)> = spans.iter().map(|s| (s.pid, s.tid)).collect();
    lanes.sort_unstable();
    lanes.dedup();
    let mut traces = vec![RankTrace::default(); lanes.len()];
    for s in spans {
        let lane = lanes.binary_search(&(s.pid, s.tid)).expect("lane recorded");
        let kind = if s.cat.contains("send") || s.name.contains("send") || s.name.contains("Send") {
            SegKind::Send
        } else {
            SegKind::Compute
        };
        traces[lane].events.push(TraceEvent {
            kind,
            start: s.ts_us / 1e6,
            end: (s.ts_us + s.dur_us) / 1e6,
        });
    }
    for tr in &mut traces {
        tr.events.sort_by(|a, b| a.start.total_cmp(&b.start));
    }
    let labels = lanes.iter().map(|&(p, t)| format!("r{p}.w{t}")).collect();
    (traces, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Link, MachineConfig};
    use crate::runner::run_sim_traced;
    use crate::Payload;

    #[test]
    fn traced_run_records_all_segment_kinds() {
        let (report, traces, _) = run_sim_traced(2, MachineConfig::power5(), |cm| {
            if cm.rank() == 0 {
                cm.compute(1e-3, 100.0);
                cm.send(1, 0, 10, Payload::Empty, Link::Col);
            } else {
                cm.recv(0, 0); // idles ~1 ms waiting
                cm.compute(5e-4, 50.0);
            }
        });
        assert_eq!(traces.len(), 2);
        let t0 = &traces[0];
        let t1 = &traces[1];
        assert!(t0.total(SegKind::Compute) > 0.0);
        assert!(t0.total(SegKind::Send) > 0.0);
        assert!(t1.total(SegKind::Idle) > 9e-4, "rank 1 must idle about 1 ms");
        // Trace totals agree with the stats counters.
        assert!((t0.total(SegKind::Compute) - report.per_rank[0].compute_time).abs() < 1e-15);
        assert!((t1.total(SegKind::Idle) - report.per_rank[1].idle_time).abs() < 1e-15);
    }

    #[test]
    fn segments_are_ordered_and_positive() {
        let (_r, traces, _) = run_sim_traced(2, MachineConfig::power5(), |cm| {
            for i in 0..5 {
                cm.compute(1e-6 * (i + 1) as f64, 1.0);
                if cm.rank() == 0 {
                    cm.send(1, i, 4, Payload::Empty, Link::Row);
                } else {
                    cm.recv(0, i);
                }
            }
        });
        for tr in &traces {
            for w in tr.events.windows(2) {
                assert!(w[0].end <= w[1].start + 1e-15, "segments must not overlap");
            }
            for e in &tr.events {
                assert!(e.duration() > 0.0);
            }
        }
    }

    #[test]
    fn breakdown_shares_sum_to_one_for_gapless_rank() {
        let (report, _, _) = run_sim_traced(2, MachineConfig::power5(), |cm| {
            if cm.rank() == 0 {
                cm.compute(1e-3, 0.0);
                cm.send(1, 0, 1000, Payload::Empty, Link::Col);
            } else {
                cm.recv(0, 0);
            }
        });
        let b = TimeBreakdown::from_stats(&report.per_rank[0]);
        let sum = b.compute + b.latency + b.bandwidth + b.idle;
        assert!((sum - 1.0).abs() < 1e-9, "rank 0 never waits: shares sum to 1, got {sum}");
        let agg = TimeBreakdown::from_report(&report);
        assert!(agg.idle > 0.0, "rank 1 idles");
    }

    #[test]
    fn gantt_renders_rows_for_all_ranks() {
        let (_r, traces, _) = run_sim_traced(3, MachineConfig::ideal(), |cm| {
            cm.compute(1.0, 0.0);
        });
        let g = render_gantt(&traces, 20);
        assert_eq!(g.lines().count(), 4, "header + 3 ranks");
        for rank in 0..3 {
            assert!(g.contains(&format!("r{rank}")));
        }
        // The ideal machine computes the whole time: rows are all '#'.
        assert!(g.contains("|####################|"));
    }

    #[test]
    fn gantt_empty_trace_is_benign() {
        let g = render_gantt(&[RankTrace::default()], 10);
        assert!(g.starts_with("time 0"));
    }

    #[test]
    fn traces_convert_to_spans_and_back() {
        let (_r, traces, _) = run_sim_traced(2, MachineConfig::power5(), |cm| {
            if cm.rank() == 0 {
                cm.compute(1e-3, 100.0);
                cm.send(1, 0, 10, Payload::Empty, Link::Col);
            } else {
                cm.recv(0, 0);
                cm.compute(5e-4, 50.0);
            }
        });
        let spans = traces_to_spans(&traces);
        // Work segments survive, idle is dropped, time scales to µs.
        let work: usize = traces
            .iter()
            .map(|t| t.events.iter().filter(|e| e.kind != SegKind::Idle).count())
            .sum();
        assert_eq!(spans.len(), work);
        assert!(spans.iter().all(|s| s.dur_us > 0.0));
        assert!(spans.windows(2).all(|w| w[0].ts_us <= w[1].ts_us), "sorted for export");
        assert!(spans.iter().any(|s| s.name == "send" && s.pid == 0));
        calu_obs::parse_chrome_trace(&calu_obs::chrome_trace(&spans)).expect("valid trace");

        // Back to lanes: per-kind totals survive the round trip.
        let (back, labels) = spans_to_traces(&spans);
        assert_eq!(labels, vec!["r0.w0".to_string(), "r1.w0".to_string()]);
        for (orig, got) in traces.iter().zip(&back) {
            for kind in [SegKind::Compute, SegKind::Send] {
                assert!((orig.total(kind) - got.total(kind)).abs() < 1e-12);
            }
            assert_eq!(got.total(SegKind::Idle), 0.0);
        }
        let g = render_gantt_labeled(&back, &labels, 40);
        assert!(g.contains("r0.w0") && g.contains('#'));
    }

    #[test]
    fn alpha_beta_split_matches_message_parameters() {
        let m = MachineConfig::power5();
        let (alpha, beta) = (m.alpha_col, m.beta_col);
        let (report, _) = crate::run_sim(2, m, |cm| {
            if cm.rank() == 0 {
                for t in 0..7 {
                    cm.send(1, t, 100, Payload::Empty, Link::Col);
                }
            } else {
                for t in 0..7 {
                    cm.recv(0, t);
                }
            }
        });
        let s = &report.per_rank[0];
        assert!((s.alpha_time - 7.0 * alpha).abs() < 1e-15);
        assert!((s.beta_time - 7.0 * 100.0 * beta).abs() < 1e-15);
        assert!((s.send_time - (s.alpha_time + s.beta_time)).abs() < 1e-15);
    }
}
