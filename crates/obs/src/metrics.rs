//! Counters, gauges, and deterministic log-bucketed histograms.
//!
//! One [`Metrics`] registry unifies the scattered telemetry of the
//! workspace — serve-layer queue depth and ticket latency, runtime task
//! counts and idle time, dist-layer communication totals — behind a
//! single [`Metrics::snapshot`] → JSON path that every bench binary
//! emits.
//!
//! **Determinism invariant.** A histogram's quantile estimates are a
//! pure function of the multiset of observed values: buckets are fixed
//! quarter-octave (`2^(i/4)`) ranges, and a quantile reports the
//! geometric midpoint of the bucket containing it (clamped to the
//! observed min/max). Observation *order* never matters, so a snapshot
//! of the same measurements is byte-identical across runs — the property
//! the unit tests pin. Wall-clock *values* of course still vary run to
//! run; what is deterministic is the data → snapshot function.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::json::JsonValue;

/// Quarter-octave buckets: 4 per power of two, so any estimate is within
/// a factor of `2^(1/4) ≈ 1.19` of a value in its bucket.
const BUCKETS_PER_OCTAVE: f64 = 4.0;
/// Bucket index clamp (`2^±64` covers every latency/byte count that can
/// occur in practice).
const IDX_CLAMP: i32 = 64 * 4;

/// A deterministic log-bucketed histogram of non-negative samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    /// Sparse bucket counts, keyed by quarter-octave index; `i` covers
    /// values in `[2^(i/4), 2^((i+1)/4))`.
    buckets: BTreeMap<i32, u64>,
    /// Samples that were zero (or negative, clamped): below every bucket.
    zeros: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Adds one sample.
    pub fn observe(&mut self, v: f64) {
        let v = if v.is_finite() { v.max(0.0) } else { 0.0 };
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        if v > 0.0 {
            let idx = ((v.log2() * BUCKETS_PER_OCTAVE).floor() as i32).clamp(-IDX_CLAMP, IDX_CLAMP);
            *self.buckets.entry(idx).or_insert(0) += 1;
        } else {
            self.zeros += 1;
        }
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observed sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observed sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The `q`-quantile estimate (`0 <= q <= 1`): the geometric midpoint
    /// of the bucket holding the `⌈q·count⌉`-th smallest sample, clamped
    /// to `[min, max]`. Deterministic in the sample multiset.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        if rank <= self.zeros {
            return 0.0;
        }
        let mut seen = self.zeros;
        for (&idx, &c) in &self.buckets {
            seen += c;
            if seen >= rank {
                let mid = ((idx as f64 + 0.5) / BUCKETS_PER_OCTAVE).exp2();
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Snapshot of the summary statistics as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj()
            .set("count", self.count)
            .set("min", self.min())
            .set("max", self.max())
            .set("mean", self.mean())
            .set("p50", self.quantile(0.50))
            .set("p95", self.quantile(0.95))
            .set("p99", self.quantile(0.99))
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
}

/// Thread-safe metrics registry; all mutators take `&self`.
#[derive(Debug, Default)]
pub struct Metrics {
    inner: Mutex<Inner>,
}

/// An immutable copy of a registry's state, for reading several related
/// values coherently.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Last-write-wins gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<(String, Histogram)>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter `name` (creating it at 0).
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the gauge `name`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        inner.gauges.insert(name.to_string(), value);
    }

    /// Adds a sample to the histogram `name` (creating it empty).
    pub fn observe(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        inner.hists.entry(name.to_string()).or_default().observe(value);
    }

    /// Current value of a counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.lock().expect("metrics poisoned").counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner.lock().expect("metrics poisoned").gauges.get(name).copied()
    }

    /// A copy of the named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner.lock().expect("metrics poisoned").hists.get(name).cloned()
    }

    /// Coherent copy of the whole registry (every collection sorted by
    /// name — `BTreeMap` iteration order).
    pub fn read(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics poisoned");
        MetricsSnapshot {
            counters: inner.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: inner.hists.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
        }
    }

    /// The canonical JSON snapshot: `{"counters": {...}, "gauges": {...},
    /// "histograms": {name: {count, min, max, mean, p50, p95, p99}}}`,
    /// every object sorted by name. This is the one serialization path
    /// all bench binaries and the serve layer use.
    pub fn snapshot(&self) -> JsonValue {
        let s = self.read();
        JsonValue::obj()
            .set(
                "counters",
                JsonValue::Obj(s.counters.into_iter().map(|(k, v)| (k, v.into())).collect()),
            )
            .set(
                "gauges",
                JsonValue::Obj(s.gauges.into_iter().map(|(k, v)| (k, v.into())).collect()),
            )
            .set(
                "histograms",
                JsonValue::Obj(s.histograms.into_iter().map(|(k, h)| (k, h.to_json())).collect()),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let m = Metrics::new();
        m.counter_add("reqs", 2);
        m.counter_add("reqs", 3);
        m.gauge_set("depth", 7.0);
        m.gauge_set("depth", 4.0);
        assert_eq!(m.counter("reqs"), 5);
        assert_eq!(m.counter("absent"), 0);
        assert_eq!(m.gauge("depth"), Some(4.0));
        assert_eq!(m.gauge("absent"), None);
    }

    #[test]
    fn histogram_quantiles_bracket_true_values() {
        let mut h = Histogram::default();
        for i in 1..=1000 {
            h.observe(i as f64);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 1000.0);
        // A quarter-octave bucket bounds the estimate within 2^(1/4).
        let tol = 2.0_f64.powf(0.25);
        for (q, truth) in [(0.5, 500.0), (0.95, 950.0), (0.99, 990.0)] {
            let est = h.quantile(q);
            assert!(
                est >= truth / tol && est <= truth * tol,
                "q={q}: estimate {est} vs true {truth}"
            );
        }
        assert_eq!(h.quantile(0.0), 1.0_f64.max(h.quantile(0.0)).min(h.quantile(0.0)));
    }

    #[test]
    fn histogram_is_order_independent_and_deterministic() {
        let samples: Vec<f64> =
            (0..500).map(|i| ((i * 2654435761_u64 as usize) % 997) as f64).collect();
        let mut fwd = Histogram::default();
        let mut rev = Histogram::default();
        for &s in &samples {
            fwd.observe(s);
        }
        for &s in samples.iter().rev() {
            rev.observe(s);
        }
        assert_eq!(fwd, rev, "histograms must not depend on observation order");
        assert_eq!(fwd.to_json().to_json(), rev.to_json().to_json());
    }

    #[test]
    fn zeros_and_degenerate_inputs() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0.0);
        h.observe(0.0);
        h.observe(-3.0); // clamped to 0
        h.observe(f64::NAN); // clamped to 0
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(0.99), 0.0);
        h.observe(8.0);
        assert_eq!(h.max(), 8.0);
        assert_eq!(h.quantile(1.0), 8.0);
        assert_eq!(h.quantile(0.5), 0.0, "half the samples are zero");
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let mut h = Histogram::default();
        h.observe(0.0125);
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(h.quantile(q), 0.0125, "clamping to [min,max] pins a single sample");
        }
    }

    #[test]
    fn snapshot_shape_and_order() {
        let m = Metrics::new();
        m.counter_add("z.last", 1);
        m.counter_add("a.first", 2);
        m.gauge_set("g", 1.5);
        m.observe("lat", 3.0);
        m.observe("lat", 5.0);
        let snap = m.snapshot();
        let txt = snap.to_json();
        // Sorted: a.first before z.last.
        assert!(txt.find("a.first").unwrap() < txt.find("z.last").unwrap());
        let hist = snap.get("histograms").unwrap().get("lat").unwrap();
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(hist.get("mean").unwrap().as_f64(), Some(4.0));
        // The snapshot parses back as valid JSON.
        assert!(crate::json::JsonValue::parse(&snap.pretty()).is_ok());
    }
}
