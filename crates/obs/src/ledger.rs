//! The communication ledger: exact measured comm vs the paper's skeletons.
//!
//! `CALU` and `PDGETRF` come with closed-form *communication skeletons* —
//! per-term message and word counts (TSLU butterfly legs, pivot
//! broadcasts, panel/U column broadcasts, the W block exchange) derived
//! from the α-β model in the paper. The runtime's mailbox is the single
//! choke point every distributed transfer crosses, so instrumenting it
//! yields *measured* counts for the same terms. A [`CommLedger`]
//! accumulates the measured side (per rank, per term); a
//! [`CommLedgerReport`] freezes it and [`CommLedgerReport::reconcile`]s
//! it against an expected side, producing one [`CommDelta`] per term.
//!
//! Conventions (must match on both sides for the comparison to mean
//! anything):
//!
//! * Broadcast-style transfers are counted **once per receiver** (the
//!   skeleton's `bcast_recv` convention), attributed to the receiving
//!   rank via [`CommLedger::record_recv`].
//! * TSLU butterfly legs are counted **at the sending roles** via
//!   [`CommLedger::record_send`] (the skeleton charges each exchanging /
//!   fold-sending process one message per leg).
//! * Reconciliation compares **per-term totals** across ranks, because
//!   send/recv attribution within a term is a convention; the totals are
//!   the physical word/message counts.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::json::JsonValue;

/// Message/word counters for one (rank, term) cell or one term total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommCounts {
    /// Number of messages (one per logical transfer).
    pub msgs: u64,
    /// Number of matrix words (f64 elements plus encoded headers).
    pub words: u64,
}

impl CommCounts {
    /// Component-wise sum.
    pub fn add(&mut self, other: CommCounts) {
        self.msgs += other.msgs;
        self.words += other.words;
    }

    /// Whether both counters are zero.
    pub fn is_zero(&self) -> bool {
        self.msgs == 0 && self.words == 0
    }
}

/// One measured row: a (rank, term, direction) cell of the ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommRow {
    /// Grid rank the traffic is attributed to.
    pub rank: u32,
    /// Term name (`tslu_leg`, `piv_bcast`, ...).
    pub term: &'static str,
    /// `true` for send-attributed traffic, `false` for recv-attributed.
    pub sent: bool,
    /// The counters.
    pub counts: CommCounts,
}

/// An expected per-term entry to reconcile the measured ledger against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommTerm {
    /// Term name, matching the measured rows' term.
    pub term: &'static str,
    /// Expected total messages across all ranks.
    pub msgs: u64,
    /// Expected total words across all ranks.
    pub words: u64,
    /// Where the expectation comes from (e.g. `"skeleton_calu"`,
    /// `"mailbox_exact"`) — reported, not compared.
    pub source: &'static str,
}

/// One blocked-wait row: nanoseconds `rank` spent blocked in a
/// `Communicator::fetch` waiting on payloads of `term`. Only backends
/// where waiting is physically real (the threaded communicator) record
/// these; synchronous mailboxes leave the table empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitRow {
    /// Grid rank that blocked.
    pub rank: u32,
    /// Term name of the payload waited for (`tslu_leg`, `piv_bcast`, ...).
    pub term: &'static str,
    /// Total blocked nanoseconds, summed over fetches.
    pub wait_ns: u64,
}

/// One reconciled term: measured total vs expected total.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommDelta {
    /// Term name.
    pub term: &'static str,
    /// Expectation source label.
    pub source: &'static str,
    /// Measured total (sends + recvs) across ranks.
    pub measured: CommCounts,
    /// Expected total across ranks.
    pub expected: CommCounts,
}

impl CommDelta {
    /// Whether measured equals expected in both messages and words.
    pub fn exact(&self) -> bool {
        self.measured == self.expected
    }

    /// Signed word gap `measured - expected`.
    pub fn word_gap(&self) -> i64 {
        self.measured.words as i64 - self.expected.words as i64
    }

    /// Signed message gap `measured - expected`.
    pub fn msg_gap(&self) -> i64 {
        self.measured.msgs as i64 - self.expected.msgs as i64
    }

    /// JSON row for reports.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj()
            .set("term", self.term)
            .set("source", self.source)
            .set("measured_msgs", self.measured.msgs)
            .set("measured_words", self.measured.words)
            .set("expected_msgs", self.expected.msgs)
            .set("expected_words", self.expected.words)
            .set("msg_gap", self.msg_gap() as f64)
            .set("word_gap", self.word_gap() as f64)
            .set("exact", self.exact())
    }
}

#[derive(Debug, Default)]
struct LedgerInner {
    /// (rank, term, sent) → counts.
    cells: BTreeMap<(u32, &'static str, bool), CommCounts>,
    /// (rank, term) → blocked-fetch nanoseconds.
    waits: BTreeMap<(u32, &'static str), u64>,
    drained_words: u64,
    residual_words: u64,
}

/// Thread-safe accumulator for measured communication, written at the
/// mailbox boundary (and at the direct cross-rank exchange in the pivot
/// swap). All mutators take `&self`.
#[derive(Debug, Default)]
pub struct CommLedger {
    inner: Mutex<LedgerInner>,
}

impl CommLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one send of `words` words attributed to `rank` under `term`.
    pub fn record_send(&self, rank: u32, term: &'static str, words: u64) {
        let mut inner = self.inner.lock().expect("ledger poisoned");
        inner.cells.entry((rank, term, true)).or_default().add(CommCounts { msgs: 1, words });
    }

    /// Records one receive of `words` words attributed to `rank` under
    /// `term`.
    pub fn record_recv(&self, rank: u32, term: &'static str, words: u64) {
        let mut inner = self.inner.lock().expect("ledger poisoned");
        inner.cells.entry((rank, term, false)).or_default().add(CommCounts { msgs: 1, words });
    }

    /// Adds `nanos` of blocked-fetch wait attributed to `rank` under
    /// `term`. Wait time is a property of the transport, not the wire:
    /// only communicators where a fetch physically blocks record it.
    pub fn record_wait(&self, rank: u32, term: &'static str, nanos: u64) {
        if nanos == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("ledger poisoned");
        *inner.waits.entry((rank, term)).or_default() += nanos;
    }

    /// Records the mailbox end-of-run drain: `drained` words evicted
    /// during the run plus `residual` words still posted at completion
    /// (0 in the happy path).
    pub fn set_drain(&self, drained: u64, residual: u64) {
        let mut inner = self.inner.lock().expect("ledger poisoned");
        inner.drained_words = drained;
        inner.residual_words = residual;
    }

    /// Freezes the ledger into an immutable report.
    pub fn report(&self) -> CommLedgerReport {
        let inner = self.inner.lock().expect("ledger poisoned");
        CommLedgerReport {
            rows: inner
                .cells
                .iter()
                .map(|(&(rank, term, sent), &counts)| CommRow { rank, term, sent, counts })
                .collect(),
            waits: inner
                .waits
                .iter()
                .map(|(&(rank, term), &wait_ns)| WaitRow { rank, term, wait_ns })
                .collect(),
            drained_words: inner.drained_words,
            residual_words: inner.residual_words,
        }
    }
}

/// Immutable snapshot of a [`CommLedger`], carried in run reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommLedgerReport {
    /// Measured cells, sorted by (rank, term, direction).
    pub rows: Vec<CommRow>,
    /// Blocked-fetch wait rows, sorted by (rank, term); empty under
    /// synchronous backends.
    pub waits: Vec<WaitRow>,
    /// Mailbox words evicted by lookahead-window retirement during the run.
    pub drained_words: u64,
    /// Mailbox words still posted at run completion (0 in the happy path).
    pub residual_words: u64,
}

impl CommLedgerReport {
    /// Measured total for one term: sends plus recvs across all ranks.
    pub fn term_total(&self, term: &str) -> CommCounts {
        let mut total = CommCounts::default();
        for row in self.rows.iter().filter(|r| r.term == term) {
            total.add(row.counts);
        }
        total
    }

    /// Measured totals per term, sorted by term name.
    pub fn term_totals(&self) -> Vec<(&'static str, CommCounts)> {
        let mut totals: BTreeMap<&'static str, CommCounts> = BTreeMap::new();
        for row in &self.rows {
            totals.entry(row.term).or_default().add(row.counts);
        }
        totals.into_iter().collect()
    }

    /// Grand measured total across all terms and ranks.
    pub fn total(&self) -> CommCounts {
        let mut total = CommCounts::default();
        for row in &self.rows {
            total.add(row.counts);
        }
        total
    }

    /// Per-rank measured totals (rank, counts), sorted by rank.
    pub fn rank_totals(&self) -> Vec<(u32, CommCounts)> {
        let mut totals: BTreeMap<u32, CommCounts> = BTreeMap::new();
        for row in &self.rows {
            totals.entry(row.rank).or_default().add(row.counts);
        }
        totals.into_iter().collect()
    }

    /// Total blocked-fetch nanoseconds across all ranks and terms.
    pub fn wait_total_ns(&self) -> u64 {
        self.waits.iter().map(|w| w.wait_ns).sum()
    }

    /// Blocked-fetch nanoseconds per term, sorted by term name.
    pub fn wait_term_totals(&self) -> Vec<(&'static str, u64)> {
        let mut totals: BTreeMap<&'static str, u64> = BTreeMap::new();
        for w in &self.waits {
            *totals.entry(w.term).or_default() += w.wait_ns;
        }
        totals.into_iter().collect()
    }

    /// Blocked-fetch nanoseconds per rank, sorted by rank.
    pub fn wait_rank_totals(&self) -> Vec<(u32, u64)> {
        let mut totals: BTreeMap<u32, u64> = BTreeMap::new();
        for w in &self.waits {
            *totals.entry(w.rank).or_default() += w.wait_ns;
        }
        totals.into_iter().collect()
    }

    /// Reconciles the measured per-term totals against `expected`,
    /// returning one [`CommDelta`] per expected term plus one delta for
    /// every measured term the expectation is silent about (expected 0 —
    /// nothing is allowed to hide). Order follows `expected`, then
    /// leftover measured terms by name.
    pub fn reconcile(&self, expected: &[CommTerm]) -> Vec<CommDelta> {
        let mut deltas: Vec<CommDelta> = expected
            .iter()
            .map(|e| CommDelta {
                term: e.term,
                source: e.source,
                measured: self.term_total(e.term),
                expected: CommCounts { msgs: e.msgs, words: e.words },
            })
            .collect();
        for (term, counts) in self.term_totals() {
            if !expected.iter().any(|e| e.term == term) {
                deltas.push(CommDelta {
                    term,
                    source: "unmodeled",
                    measured: counts,
                    expected: CommCounts::default(),
                });
            }
        }
        deltas
    }

    /// JSON form: per-term totals, per-rank totals, drain counters, and
    /// (when `expected` is non-empty) the reconciliation table.
    pub fn to_json(&self, expected: &[CommTerm]) -> JsonValue {
        let terms: JsonValue = self
            .term_totals()
            .into_iter()
            .map(|(term, c)| {
                JsonValue::obj().set("term", term).set("msgs", c.msgs).set("words", c.words)
            })
            .collect();
        let ranks: JsonValue = self
            .rank_totals()
            .into_iter()
            .map(|(rank, c)| {
                JsonValue::obj()
                    .set("rank", u64::from(rank))
                    .set("msgs", c.msgs)
                    .set("words", c.words)
            })
            .collect();
        let mut doc = JsonValue::obj()
            .set("terms", terms)
            .set("ranks", ranks)
            .set("total_msgs", self.total().msgs)
            .set("total_words", self.total().words)
            .set("drained_words", self.drained_words)
            .set("residual_words", self.residual_words);
        if !self.waits.is_empty() {
            let waits: JsonValue = self
                .waits
                .iter()
                .map(|w| {
                    JsonValue::obj()
                        .set("rank", u64::from(w.rank))
                        .set("term", w.term)
                        .set("wait_ns", w.wait_ns)
                })
                .collect();
            doc = doc.set("waits", waits).set("wait_total_ns", self.wait_total_ns());
        }
        if !expected.is_empty() {
            let recon: JsonValue =
                self.reconcile(expected).iter().map(CommDelta::to_json).collect();
            doc = doc.set("reconcile", recon);
        }
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ledger() -> CommLedger {
        let ledger = CommLedger::new();
        ledger.record_send(0, "tslu_leg", 38);
        ledger.record_send(1, "tslu_leg", 38);
        ledger.record_recv(2, "piv_bcast", 4);
        ledger.record_recv(3, "piv_bcast", 4);
        ledger.record_recv(2, "piv_bcast", 4);
        ledger.set_drain(100, 0);
        ledger
    }

    #[test]
    fn totals_aggregate_sends_and_recvs() {
        let rep = sample_ledger().report();
        assert_eq!(rep.term_total("tslu_leg"), CommCounts { msgs: 2, words: 76 });
        assert_eq!(rep.term_total("piv_bcast"), CommCounts { msgs: 3, words: 12 });
        assert_eq!(rep.term_total("absent"), CommCounts::default());
        assert_eq!(rep.total(), CommCounts { msgs: 5, words: 88 });
        assert_eq!(rep.rank_totals()[0], (0, CommCounts { msgs: 1, words: 38 }));
        assert_eq!(rep.drained_words, 100);
        assert_eq!(rep.residual_words, 0);
    }

    #[test]
    fn reconcile_flags_exact_gapped_and_unmodeled_terms() {
        let rep = sample_ledger().report();
        let expected = [
            CommTerm { term: "tslu_leg", msgs: 2, words: 76, source: "mailbox_exact" },
            CommTerm { term: "piv_bcast", msgs: 3, words: 13, source: "skeleton_calu" },
            CommTerm { term: "panel_bcast", msgs: 0, words: 0, source: "skeleton_calu" },
        ];
        let deltas = rep.reconcile(&expected);
        assert_eq!(deltas.len(), 3, "2 terms measured, both expected; panel_bcast expected-only");
        assert!(deltas[0].exact());
        assert!(!deltas[1].exact());
        assert_eq!(deltas[1].word_gap(), -1);
        assert_eq!(deltas[1].msg_gap(), 0);
        assert!(deltas[2].exact(), "0 expected, 0 measured is exact");

        // A measured term the expectation is silent about surfaces as
        // "unmodeled" with expected 0.
        let deltas = rep.reconcile(&expected[..1]);
        let piv = deltas.iter().find(|d| d.term == "piv_bcast").expect("surfaced");
        assert_eq!(piv.source, "unmodeled");
        assert!(!piv.exact());
    }

    #[test]
    fn report_is_deterministic_and_json_parses() {
        let a = sample_ledger().report();
        let b = sample_ledger().report();
        assert_eq!(a, b);
        let expected = [CommTerm { term: "tslu_leg", msgs: 2, words: 76, source: "x" }];
        let json = a.to_json(&expected);
        assert_eq!(json.to_json(), b.to_json(&expected).to_json());
        let parsed = JsonValue::parse(&json.pretty()).expect("valid JSON");
        assert_eq!(parsed.get("total_words").unwrap().as_u64(), Some(88));
        let recon = parsed.get("reconcile").unwrap().as_array().unwrap();
        assert_eq!(recon.len(), 2, "tslu_leg + unmodeled piv_bcast");
        assert_eq!(recon[0].get("exact").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn waits_accumulate_per_rank_and_term_and_serialize() {
        let ledger = sample_ledger();
        ledger.record_wait(0, "tslu_leg", 1_000);
        ledger.record_wait(0, "tslu_leg", 500);
        ledger.record_wait(2, "piv_bcast", 250);
        ledger.record_wait(3, "u_bcast", 0); // zero waits leave no row
        let rep = ledger.report();
        assert_eq!(rep.waits.len(), 2);
        assert_eq!(rep.wait_total_ns(), 1_750);
        assert_eq!(rep.wait_term_totals(), vec![("piv_bcast", 250), ("tslu_leg", 1_500)]);
        assert_eq!(rep.wait_rank_totals(), vec![(0, 1_500), (2, 250)]);
        let json = rep.to_json(&[]);
        assert_eq!(json.get("wait_total_ns").and_then(JsonValue::as_u64), Some(1_750));
        assert_eq!(json.get("waits").and_then(JsonValue::as_array).unwrap().len(), 2);
        // A wait-free ledger serializes without the wait section at all.
        let silent = sample_ledger().report();
        assert_eq!(silent.wait_total_ns(), 0);
        assert!(silent.to_json(&[]).get("waits").is_none());
    }

    #[test]
    fn empty_ledger_reconciles_to_expected_side_only() {
        let rep = CommLedger::new().report();
        assert!(rep.rows.is_empty());
        assert!(rep.total().is_zero());
        let deltas =
            rep.reconcile(&[CommTerm { term: "u_bcast", msgs: 4, words: 64, source: "s" }]);
        assert_eq!(deltas.len(), 1);
        assert!(!deltas[0].exact());
        assert_eq!(deltas[0].word_gap(), -64);
    }
}
