//! A minimal, deterministic JSON value: writer and parser.
//!
//! The workspace builds in a container with no registry access, so there
//! is no serde; the observability layer needs exactly two things from
//! JSON — a *deterministic* writer (same data ⇒ byte-identical output,
//! so committed `BENCH_*.json` / trace files diff cleanly) and a small
//! parser so tests, examples, and CI can validate what was emitted
//! without shelling out. Objects preserve insertion order (they are a
//! `Vec` of pairs, not a map), which is what makes the writer
//! deterministic by construction.

use std::fmt::Write as _;

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like browsers do). Non-finite
    /// values serialize as `null` — JSON has no NaN/∞.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in insertion order.
    Obj(Vec<(String, JsonValue)>),
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Num(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Num(v as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Num(v as f64)
    }
}

impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::Num(v as f64)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

impl<V: Into<JsonValue>> FromIterator<V> for JsonValue {
    fn from_iter<I: IntoIterator<Item = V>>(iter: I) -> Self {
        JsonValue::Arr(iter.into_iter().map(Into::into).collect())
    }
}

impl JsonValue {
    /// An empty object.
    pub fn obj() -> Self {
        JsonValue::Obj(Vec::new())
    }

    /// Sets `key` on an object (replacing an existing entry in place,
    /// appending otherwise) and returns `self` for chaining.
    ///
    /// # Panics
    /// If `self` is not an object.
    pub fn set(mut self, key: &str, value: impl Into<JsonValue>) -> Self {
        let JsonValue::Obj(pairs) = &mut self else { panic!("JsonValue::set on a non-object") };
        let value = value.into();
        match pairs.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => pairs.push((key.to_string(), value)),
        }
        self
    }

    /// Looks a key up on an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Compact serialization (no whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization with two-space indentation and a trailing
    /// newline — the committed-artifact format.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(v) => out.push_str(&format_number(*v)),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (the writer's counterpart; accepts any
    /// standard JSON, not just what the writer emits).
    ///
    /// # Errors
    /// A message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Shortest round-trip decimal for a finite `f64`; integers within the
/// exact range print without a fractional part.
fn format_number(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        // `{:?}` is Rust's shortest representation that parses back to
        // the same bits — exactly the round-trip property a trace needs.
        format!("{v:?}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid utf-8 at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are not reassembled — the
                            // writer never emits them (it escapes only
                            // control characters).
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("unknown escape at byte {}", self.pos - 1)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_is_deterministic_and_ordered() {
        let v = JsonValue::obj()
            .set("b", 1u64)
            .set("a", 2u64)
            .set("list", [1u64, 2, 3].into_iter().collect::<JsonValue>());
        // Insertion order, not alphabetical — determinism by construction.
        assert_eq!(v.to_json(), r#"{"b":1,"a":2,"list":[1,2,3]}"#);
        assert_eq!(v.to_json(), v.clone().to_json());
    }

    #[test]
    fn set_replaces_in_place() {
        let v = JsonValue::obj().set("a", 1u64).set("b", 2u64).set("a", 3u64);
        assert_eq!(v.to_json(), r#"{"a":3,"b":2}"#);
    }

    #[test]
    fn round_trip_through_parser() {
        let v = JsonValue::obj()
            .set("name", "Gemm(0,1)@r2")
            .set("pi", 3.25)
            .set("neg", JsonValue::Num(-1.5e-3))
            .set("flag", true)
            .set("nested", JsonValue::obj().set("x", JsonValue::Null))
            .set("arr", ["a", "b"].into_iter().collect::<JsonValue>());
        for text in [v.to_json(), v.pretty()] {
            assert_eq!(JsonValue::parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn parser_accepts_escapes_and_unicode() {
        let v = JsonValue::parse(r#"{"s": "a\"b\\c\ndA", "t": [1e3, -2.5E-1]}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "a\"b\\c\ndA");
        let arr = v.get("t").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1000.0));
        assert_eq!(arr[1].as_f64(), Some(-0.25));
    }

    #[test]
    fn escaping_round_trips() {
        let nasty = "quote\" backslash\\ newline\n tab\t ctrl\u{1} unicode λ";
        let v = JsonValue::obj().set("s", nasty);
        let back = JsonValue::parse(&v.to_json()).unwrap();
        assert_eq!(back.get("s").unwrap().as_str().unwrap(), nasty);
    }

    #[test]
    fn parser_rejects_malformed() {
        for bad in ["{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated", "{\"a\" 1}"] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn numbers_format_cleanly() {
        assert_eq!(JsonValue::Num(3.0).to_json(), "3");
        assert_eq!(JsonValue::Num(-17.0).to_json(), "-17");
        assert_eq!(JsonValue::Num(0.1).to_json(), "0.1");
        assert_eq!(JsonValue::Num(f64::NAN).to_json(), "null");
        // Round trip of a representative shortest repr.
        let x = 1.0 / 3.0;
        let parsed = JsonValue::parse(&JsonValue::Num(x).to_json()).unwrap();
        assert_eq!(parsed.as_f64(), Some(x));
    }

    #[test]
    fn accessors() {
        let v = JsonValue::parse(r#"{"n": 4, "s": "x", "b": false, "a": [], "o": {}}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert!(v.get("a").unwrap().as_array().unwrap().is_empty());
        assert!(v.get("o").unwrap().as_object().unwrap().is_empty());
        assert!(v.get("missing").is_none());
        assert_eq!(JsonValue::Num(1.5).as_u64(), None);
    }
}
