//! Structured trace spans and Chrome-trace (`trace_events`) export.
//!
//! A [`Span`] is one closed interval of work attributed to a *rank*
//! (Chrome's `pid` — a grid rank for distributed runs, 0 for
//! shared-memory runs, a service id for the serve layer) and a *worker*
//! (Chrome's `tid` — the executor worker thread that ran the task). The
//! [`Recorder`] collects spans from any thread behind one short-lived
//! mutex — it is touched once per completed task, on the executor's
//! coordinator path rather than in the worker hot loop, so tracing costs
//! one lock and one `Vec` push per task.
//!
//! [`chrome_trace`] serializes spans in the Chrome `trace_events` JSON
//! format (`ph: "X"` complete events, microsecond timestamps), which
//! `chrome://tracing`, Perfetto, and Speedscope all open directly.
//! [`parse_chrome_trace`] is the inverse, used by tests, the
//! `trace_export` example, and CI to prove the export round-trips.

use std::sync::Mutex;

use crate::json::JsonValue;

/// One completed interval of attributed work.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Human-readable event name (e.g. `Gemm(0,1)@r2`).
    pub name: String,
    /// Event category (Chrome groups and filters by it): a task-kind
    /// slug such as `gemm`, `tslu_leg`, `serve`.
    pub cat: &'static str,
    /// Process lane: the *rank* that owns the work.
    pub pid: u32,
    /// Thread lane within the process: the *worker* that ran it.
    pub tid: u32,
    /// Start, microseconds from the run epoch.
    pub ts_us: f64,
    /// Duration in microseconds (`>= 0`).
    pub dur_us: f64,
}

/// Thread-safe span collector; see the module docs for the locking
/// discipline.
#[derive(Debug, Default)]
pub struct Recorder {
    spans: Mutex<Vec<Span>>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one span.
    pub fn record(&self, span: Span) {
        self.spans.lock().expect("recorder poisoned").push(span);
    }

    /// Records a span from second-denominated interval endpoints (the
    /// executors' native unit).
    pub fn record_interval(
        &self,
        name: String,
        cat: &'static str,
        pid: u32,
        tid: u32,
        start_s: f64,
        end_s: f64,
    ) {
        self.record(Span {
            name,
            cat,
            pid,
            tid,
            ts_us: start_s * 1e6,
            dur_us: (end_s - start_s).max(0.0) * 1e6,
        });
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.lock().expect("recorder poisoned").len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the recorded spans, sorted by start time (then rank,
    /// then worker) — the order every consumer wants.
    pub fn snapshot(&self) -> Vec<Span> {
        let mut spans = self.spans.lock().expect("recorder poisoned").clone();
        sort_spans(&mut spans);
        spans
    }

    /// Drains the recorded spans (sorted like [`Recorder::snapshot`]).
    pub fn take(&self) -> Vec<Span> {
        let mut spans = std::mem::take(&mut *self.spans.lock().expect("recorder poisoned"));
        sort_spans(&mut spans);
        spans
    }

    /// Chrome-trace JSON of the current snapshot.
    pub fn chrome_trace(&self) -> String {
        chrome_trace(&self.snapshot())
    }
}

fn sort_spans(spans: &mut [Span]) {
    spans.sort_by(|a, b| {
        a.ts_us.total_cmp(&b.ts_us).then(a.pid.cmp(&b.pid)).then(a.tid.cmp(&b.tid))
    });
}

/// Serializes spans as a Chrome `trace_events` document: one `ph: "X"`
/// complete event per span, `pid` = rank, `tid` = worker, timestamps in
/// microseconds, events sorted by start time (trace viewers require
/// non-decreasing `ts`). The output is deterministic for a given span
/// sequence.
pub fn chrome_trace(spans: &[Span]) -> String {
    let mut sorted = spans.to_vec();
    sort_spans(&mut sorted);
    let events: JsonValue = sorted
        .iter()
        .map(|s| {
            JsonValue::obj()
                .set("name", s.name.as_str())
                .set("cat", s.cat)
                .set("ph", "X")
                .set("pid", s.pid)
                .set("tid", s.tid)
                .set("ts", s.ts_us)
                .set("dur", s.dur_us)
        })
        .collect();
    JsonValue::obj().set("traceEvents", events).set("displayTimeUnit", "ms").pretty()
}

/// Parses and validates a Chrome `trace_events` document produced by
/// [`chrome_trace`] (or hand-written in the same dialect): every event
/// must be a complete (`ph: "X"`) event with numeric `pid`/`tid`, a
/// non-negative `dur`, and non-decreasing `ts`.
///
/// # Errors
/// A description of the first malformed event (or JSON syntax error).
pub fn parse_chrome_trace(text: &str) -> Result<Vec<Span>, String> {
    let doc = JsonValue::parse(text)?;
    let events =
        doc.get("traceEvents").and_then(JsonValue::as_array).ok_or("missing traceEvents array")?;
    let mut spans = Vec::with_capacity(events.len());
    let mut last_ts = f64::NEG_INFINITY;
    for (i, ev) in events.iter().enumerate() {
        let field = |k: &str| {
            ev.get(k).and_then(JsonValue::as_f64).ok_or(format!("event {i}: missing numeric {k}"))
        };
        match ev.get("ph").and_then(JsonValue::as_str) {
            Some("X") => {}
            other => return Err(format!("event {i}: ph must be \"X\", got {other:?}")),
        }
        let name = ev
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or(format!("event {i}: missing name"))?
            .to_string();
        let (pid, tid) = (field("pid")?, field("tid")?);
        if pid.fract() != 0.0 || tid.fract() != 0.0 || pid < 0.0 || tid < 0.0 {
            return Err(format!("event {i}: pid/tid must be non-negative integers"));
        }
        let (ts, dur) = (field("ts")?, field("dur")?);
        if dur < 0.0 {
            return Err(format!("event {i}: negative dur"));
        }
        if ts < last_ts {
            return Err(format!("event {i}: ts not monotone ({ts} after {last_ts})"));
        }
        last_ts = ts;
        spans.push(Span {
            name,
            // Categories parse back as owned strings conceptually; the
            // `Span` keeps a static slug, so map unknown ones to "".
            cat: "",
            pid: pid as u32,
            tid: tid as u32,
            ts_us: ts,
            dur_us: dur,
        });
    }
    Ok(spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, pid: u32, tid: u32, ts: f64, dur: f64) -> Span {
        Span { name: name.to_string(), cat: "test", pid, tid, ts_us: ts, dur_us: dur }
    }

    #[test]
    fn recorder_collects_and_sorts() {
        let rec = Recorder::new();
        rec.record(span("b", 1, 0, 20.0, 5.0));
        rec.record(span("a", 0, 0, 10.0, 5.0));
        rec.record_interval("c".into(), "test", 0, 1, 1e-6, 3e-6);
        assert_eq!(rec.len(), 3);
        let spans = rec.snapshot();
        assert_eq!(spans[0].name, "c");
        assert_eq!(spans[1].name, "a");
        assert_eq!(spans[2].name, "b");
        assert!((spans[0].ts_us - 1.0).abs() < 1e-12);
        assert!((spans[0].dur_us - 2.0).abs() < 1e-12);
        assert_eq!(rec.take().len(), 3);
        assert!(rec.is_empty());
    }

    #[test]
    fn chrome_round_trip_preserves_lane_structure() {
        let rec = Recorder::new();
        for (pid, tid, ts) in [(2u32, 1u32, 30.0), (0, 0, 10.0), (1, 3, 20.0)] {
            rec.record(span(&format!("t{pid}"), pid, tid, ts, 4.0));
        }
        let text = rec.chrome_trace();
        let back = parse_chrome_trace(&text).expect("valid trace");
        assert_eq!(back.len(), 3);
        // Sorted by ts; pid/tid survive the trip.
        assert_eq!((back[0].pid, back[0].tid), (0, 0));
        assert_eq!((back[1].pid, back[1].tid), (1, 3));
        assert_eq!((back[2].pid, back[2].tid), (2, 1));
        for (a, b) in back.windows(2).map(|w| (&w[0], &w[1])) {
            assert!(a.ts_us <= b.ts_us, "export must emit monotone ts");
        }
        // Determinism: same spans, same bytes.
        assert_eq!(text, rec.chrome_trace());
    }

    #[test]
    fn parser_rejects_malformed_traces() {
        for (bad, why) in [
            (r#"{"foo": []}"#, "missing traceEvents"),
            (r#"{"traceEvents": [{"ph": "B", "name": "x"}]}"#, "non-X phase"),
            (
                r#"{"traceEvents": [{"ph": "X", "name": "x", "pid": 0, "tid": 0, "dur": 1}]}"#,
                "missing ts",
            ),
            (
                r#"{"traceEvents": [
                    {"ph": "X", "name": "a", "pid": 0, "tid": 0, "ts": 5, "dur": 1},
                    {"ph": "X", "name": "b", "pid": 0, "tid": 0, "ts": 4, "dur": 1}]}"#,
                "non-monotone ts",
            ),
            (
                r#"{"traceEvents": [{"ph": "X", "name": "x", "pid": 0.5, "tid": 0, "ts": 0, "dur": 1}]}"#,
                "fractional pid",
            ),
            (
                r#"{"traceEvents": [{"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": 0, "dur": -1}]}"#,
                "negative dur",
            ),
        ] {
            assert!(parse_chrome_trace(bad).is_err(), "{why} must be rejected");
        }
    }

    #[test]
    fn empty_trace_is_valid() {
        let text = chrome_trace(&[]);
        assert_eq!(parse_chrome_trace(&text).unwrap(), vec![]);
    }
}
