//! Wait-state profiling and measured critical-path analysis.
//!
//! The recording layers ([`trace`](crate::trace), [`ledger`](crate::ledger))
//! say *what happened*; this module says *where the time went*. It ingests
//! a span timeline (live [`Recorder`](crate::Recorder) output or a parsed
//! Chrome trace) plus the wait/queue-delay side channels and produces a
//! [`Profile`]: per-worker wall-clock partitioned into **compute**,
//! **comm-wait**, **overhead**, and **idle**, with an *exact* sum-to-wall
//! invariant, plus the *measured* critical path — the longest temporal
//! chain of spans, optionally restricted to the DAG's dependency edges.
//!
//! # The exact-partition arithmetic
//!
//! All partition math happens in integer nanoseconds so the invariant is
//! equality, not tolerance. Per worker lane `(pid, tid)`:
//!
//! * `busy` — the length of the **interval union** of the lane's spans
//!   (spans may nest, e.g. the serve layer's `process` span over its task
//!   spans; summing durations would double-count).
//! * `comm_wait = min(reported blocked-fetch time, busy)` — waiting
//!   happens *inside* task spans (a blocked `fetch` runs under the task
//!   that needed the payload), so it is carved out of busy time.
//! * `compute = busy − comm_wait` — the remainder of busy time.
//! * `overhead = min(reported queue delay, wall − busy)` — ready-to-start
//!   gaps live *outside* spans, so they are carved out of non-busy time.
//! * `idle = wall − busy − overhead` — everything else.
//!
//! By construction `compute + comm_wait + overhead + idle == wall` holds
//! exactly for every worker, for any inputs — the clamps make the
//! partition total; the tests and CI assert the equality bit-for-bit.
//!
//! # Measured critical paths
//!
//! [`longest_chain_ns`] is the *temporal* critical path: the maximum
//! total duration of any chain of non-overlapping spans (each next span
//! starts at or after the previous one ends). It needs no DAG and upper-
//! bounds any dependency-constrained chain. [`dag_span_chain_ns`] chains
//! executed spans through explicit dependency edges (keeping only edges
//! the timeline is consistent with), so for a run that recorded one or
//! more spans per DAG task:
//!
//! `dag_span_chain_ns ≤ longest_chain_ns ≤ wall`
//!
//! — the sandwich CI asserts on real rank-threaded runs.

use std::collections::BTreeMap;

use crate::json::JsonValue;
use crate::trace::Span;

/// One span as a closed integer-nanosecond interval `(start, end)`.
///
/// Chrome traces carry microsecond floats; rounding both endpoints to
/// nanoseconds keeps every downstream sum exact.
pub fn span_interval_ns(s: &Span) -> (u64, u64) {
    let start = (s.ts_us * 1e3).round().max(0.0) as u64;
    let end = ((s.ts_us + s.dur_us) * 1e3).round().max(0.0) as u64;
    (start, end.max(start))
}

/// All spans as nanosecond intervals, in span order.
pub fn intervals_ns(spans: &[Span]) -> Vec<(u64, u64)> {
    spans.iter().map(span_interval_ns).collect()
}

/// Total length of the union of `intervals` (overlaps counted once).
pub fn union_ns(intervals: &[(u64, u64)]) -> u64 {
    let mut sorted = intervals.to_vec();
    sorted.sort_unstable();
    let mut total = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (s, e) in sorted {
        match &mut cur {
            Some((_, ce)) if s <= *ce => *ce = (*ce).max(e),
            _ => {
                if let Some((cs, ce)) = cur {
                    total += ce - cs;
                }
                cur = Some((s, e));
            }
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

/// The measured critical path over a bare timeline: the maximum total
/// duration of any chain of non-overlapping intervals (every next
/// interval starts at or after the previous one ends). `O(n log n)`
/// weighted-interval DP; no dependency information needed, so it upper-
/// bounds every DAG-constrained chain over the same intervals.
pub fn longest_chain_ns(intervals: &[(u64, u64)]) -> u64 {
    let mut sorted = intervals.to_vec();
    sorted.sort_unstable_by_key(|&(s, e)| (e, s));
    let ends: Vec<u64> = sorted.iter().map(|&(_, e)| e).collect();
    // prefix_max[i] = best chain total using only the first i intervals.
    let mut prefix_max = vec![0u64; sorted.len() + 1];
    for (i, &(s, e)) in sorted.iter().enumerate() {
        // Intervals are sorted by end, so everything ending at or before
        // this start is a valid predecessor; take the best of them.
        let fits = ends[..i].partition_point(|&pe| pe <= s);
        let chain = (e - s) + prefix_max[fits];
        prefix_max[i + 1] = prefix_max[i].max(chain);
    }
    prefix_max[sorted.len()]
}

/// The measured critical path restricted to dependency structure: the
/// longest duration-weighted path through `edges` (pairs of indices into
/// `intervals`), keeping only edges the timeline is consistent with
/// (predecessor ends at or before successor starts). Collective tasks may
/// execute once per participant — pass one interval per *execution* and
/// fan the task-level edge out to all instance pairs; inconsistent pairs
/// drop out here.
///
/// Every retained path is a non-overlapping temporal chain, so the result
/// is `≤` [`longest_chain_ns`] over the same intervals by construction.
pub fn dag_span_chain_ns(intervals: &[(u64, u64)], edges: &[(usize, usize)]) -> u64 {
    let n = intervals.len();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for &(u, v) in edges {
        if u < n && v < n && u != v && intervals[u].1 <= intervals[v].0 {
            succs[u].push(v);
            indeg[v] += 1;
        }
    }
    let dur = |i: usize| intervals[i].1 - intervals[i].0;
    let mut dp: Vec<u64> = (0..n).map(dur).collect();
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    while let Some(u) = queue.pop() {
        for &v in &succs[u] {
            dp[v] = dp[v].max(dp[u] + dur(v));
            indeg[v] -= 1;
            if indeg[v] == 0 {
                queue.push(v);
            }
        }
    }
    dp.into_iter().max().unwrap_or(0)
}

/// One worker lane's exact wall-clock partition. All fields are integer
/// nanoseconds; [`WorkerProfile::partition_exact`] is `true` by
/// construction (see the module docs for the arithmetic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerProfile {
    /// Rank lane (Chrome `pid`).
    pub pid: u32,
    /// Worker lane within the rank (Chrome `tid`).
    pub tid: u32,
    /// The profile's wall clock (shared by every lane).
    pub wall_ns: u64,
    /// Union length of this lane's spans.
    pub busy_ns: u64,
    /// Busy time net of communication waiting.
    pub compute_ns: u64,
    /// Blocked-fetch time carved out of busy time.
    pub comm_wait_ns: u64,
    /// Scheduler queue delay carved out of non-busy time.
    pub overhead_ns: u64,
    /// Remaining non-busy, non-overhead time.
    pub idle_ns: u64,
    /// Spans recorded on this lane.
    pub spans: usize,
}

impl WorkerProfile {
    /// The sum-to-wall invariant: `compute + comm_wait + overhead + idle
    /// == wall`, exactly.
    pub fn partition_exact(&self) -> bool {
        self.compute_ns + self.comm_wait_ns + self.overhead_ns + self.idle_ns == self.wall_ns
    }

    /// JSON row (nanosecond integers plus float seconds).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj()
            .set("pid", self.pid)
            .set("tid", self.tid)
            .set("spans", self.spans)
            .set("wall_ns", self.wall_ns)
            .set("busy_ns", self.busy_ns)
            .set("compute_ns", self.compute_ns)
            .set("comm_wait_ns", self.comm_wait_ns)
            .set("overhead_ns", self.overhead_ns)
            .set("idle_ns", self.idle_ns)
            .set("compute_s", self.compute_ns as f64 / 1e9)
            .set("comm_wait_s", self.comm_wait_ns as f64 / 1e9)
            .set("overhead_s", self.overhead_ns as f64 / 1e9)
            .set("idle_s", self.idle_ns as f64 / 1e9)
    }
}

/// Side-channel inputs to [`Profile::build`] beyond the span timeline
/// itself. Both tables key on the `(pid, tid)` worker lane; lanes with no
/// entry contribute zero.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProfileInputs<'a> {
    /// Wall-clock seconds of the whole run, if the caller measured one.
    /// The profile's wall is `max(this, latest span end)`, so the busy
    /// union can never exceed it.
    pub wall_s: f64,
    /// Blocked-fetch nanoseconds per lane (e.g. the ledger's wait rows,
    /// with rank `r` mapped to lane `(r, r)` for rank-threaded runs).
    pub comm_wait_ns: &'a [((u32, u32), u64)],
    /// Scheduler queue-delay nanoseconds per lane (the executors'
    /// ready-to-start gaps, summed per worker).
    pub overhead_ns: &'a [((u32, u32), u64)],
}

/// The analysis result: per-worker exact wall-clock partitions plus the
/// measured temporal critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// The run's wall clock: `max(caller-supplied wall, latest span end)`.
    pub wall_ns: u64,
    /// Measured critical path over all spans ([`longest_chain_ns`]).
    pub measured_cp_ns: u64,
    /// One partition per `(pid, tid)` lane, sorted by lane.
    pub workers: Vec<WorkerProfile>,
    /// Total spans analyzed.
    pub spans: usize,
}

impl Profile {
    /// Builds the profile from a span timeline plus the wait/queue-delay
    /// side channels. Every returned [`WorkerProfile`] satisfies
    /// [`WorkerProfile::partition_exact`]; this method asserts it.
    pub fn build(spans: &[Span], inputs: ProfileInputs<'_>) -> Profile {
        let mut lanes: BTreeMap<(u32, u32), Vec<(u64, u64)>> = BTreeMap::new();
        let mut all = Vec::with_capacity(spans.len());
        for s in spans {
            let iv = span_interval_ns(s);
            lanes.entry((s.pid, s.tid)).or_default().push(iv);
            all.push(iv);
        }
        let span_end = all.iter().map(|&(_, e)| e).max().unwrap_or(0);
        let wall_ns = ((inputs.wall_s * 1e9).round().max(0.0) as u64).max(span_end);
        let lookup = |table: &[((u32, u32), u64)], lane: (u32, u32)| {
            table.iter().filter(|&&(l, _)| l == lane).map(|&(_, v)| v).sum::<u64>()
        };
        let workers = lanes
            .into_iter()
            .map(|((pid, tid), ivs)| {
                let busy_ns = union_ns(&ivs);
                let comm_wait_ns = lookup(inputs.comm_wait_ns, (pid, tid)).min(busy_ns);
                let overhead_ns = lookup(inputs.overhead_ns, (pid, tid)).min(wall_ns - busy_ns);
                let w = WorkerProfile {
                    pid,
                    tid,
                    wall_ns,
                    busy_ns,
                    compute_ns: busy_ns - comm_wait_ns,
                    comm_wait_ns,
                    overhead_ns,
                    idle_ns: wall_ns - busy_ns - overhead_ns,
                    spans: ivs.len(),
                };
                assert!(w.partition_exact(), "partition must sum to wall for lane ({pid},{tid})");
                w
            })
            .collect();
        Profile { wall_ns, measured_cp_ns: longest_chain_ns(&all), workers, spans: spans.len() }
    }

    /// Sum of a per-worker field across lanes.
    fn total(&self, f: impl Fn(&WorkerProfile) -> u64) -> u64 {
        self.workers.iter().map(f).sum()
    }

    /// Deterministic JSON report: run totals plus the per-worker table.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj()
            .set("wall_ns", self.wall_ns)
            .set("wall_s", self.wall_ns as f64 / 1e9)
            .set("measured_cp_ns", self.measured_cp_ns)
            .set("measured_cp_s", self.measured_cp_ns as f64 / 1e9)
            .set("spans", self.spans)
            .set("workers", self.workers.len())
            .set("compute_ns", self.total(|w| w.compute_ns))
            .set("comm_wait_ns", self.total(|w| w.comm_wait_ns))
            .set("overhead_ns", self.total(|w| w.overhead_ns))
            .set("idle_ns", self.total(|w| w.idle_ns))
            .set(
                "per_worker",
                self.workers.iter().map(WorkerProfile::to_json).collect::<JsonValue>(),
            )
    }
}

/// Normalizes intervals into sorted, disjoint, non-empty form (touching
/// intervals merge) — the representation [`intersection_ns`] expects.
pub fn merge_intervals(intervals: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut sorted: Vec<(u64, u64)> = intervals.iter().copied().filter(|&(s, e)| e > s).collect();
    sorted.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(sorted.len());
    for (s, e) in sorted {
        match out.last_mut() {
            Some((_, le)) if s <= *le => *le = (*le).max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Total overlap length between two merged interval sets (both as
/// returned by [`merge_intervals`]). Linear two-pointer sweep.
pub fn intersection_ns(a: &[(u64, u64)], b: &[(u64, u64)]) -> u64 {
    let (mut i, mut j, mut total) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            total += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

/// **Phase wait**: total worker idle time that overlaps a phase of
/// interest — e.g. how long lanes sit empty *while some lane is inside a
/// panel task*, the quantity the tile-resident panel decomposition exists
/// to shrink.
///
/// For each `(pid, tid)` lane, idle is the complement of the lane's span
/// union within `[0, wall]` (`wall` = `max(wall_ns, latest span end)`);
/// the returned value sums, across lanes, the overlap of that idle set
/// with the union of spans whose category satisfies `is_phase`. Queue
/// delay is *not* subtracted here — this is the coarse "lanes had nothing
/// to do during the phase" measure, an upper bound on schedulable loss;
/// the exact per-lane partition stays [`Profile::build`]'s job.
pub fn idle_overlap_ns(
    spans: &[Span],
    mut is_phase: impl FnMut(&str) -> bool,
    wall_ns: u64,
) -> u64 {
    let mut phase: Vec<(u64, u64)> = Vec::new();
    let mut lanes: BTreeMap<(u32, u32), Vec<(u64, u64)>> = BTreeMap::new();
    let mut wall = wall_ns;
    for s in spans {
        let iv = span_interval_ns(s);
        wall = wall.max(iv.1);
        if is_phase(s.cat) {
            phase.push(iv);
        }
        lanes.entry((s.pid, s.tid)).or_default().push(iv);
    }
    let phase = merge_intervals(&phase);
    lanes
        .values()
        .map(|ivs| {
            let busy = merge_intervals(ivs);
            // Complement of busy within [0, wall].
            let mut idle = Vec::with_capacity(busy.len() + 1);
            let mut cursor = 0u64;
            for &(s, e) in &busy {
                if s > cursor {
                    idle.push((cursor, s));
                }
                cursor = cursor.max(e);
            }
            if wall > cursor {
                idle.push((cursor, wall));
            }
            intersection_ns(&idle, &phase)
        })
        .sum()
}

/// Measured nanoseconds per phase (span category), sorted by phase name.
/// Spans with an empty category (e.g. parsed Chrome traces, which do not
/// preserve categories) are skipped.
pub fn measured_phase_ns(spans: &[Span]) -> Vec<(String, u64)> {
    let mut totals: BTreeMap<String, u64> = BTreeMap::new();
    for s in spans {
        if s.cat.is_empty() {
            continue;
        }
        let (st, en) = span_interval_ns(s);
        *totals.entry(s.cat.to_string()).or_default() += en - st;
    }
    totals.into_iter().collect()
}

/// One phase of the model-vs-measured reconciliation.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRatio {
    /// Phase name (a task-category slug such as `gemm` or `tslu_leg`).
    pub phase: String,
    /// Measured seconds in this phase (summed span time).
    pub measured_s: f64,
    /// Modeled seconds in this phase (cost-model total).
    pub modeled_s: f64,
}

impl PhaseRatio {
    /// `measured / modeled`; infinite when the model has no time for a
    /// measured phase, and 1 when both sides are zero.
    pub fn ratio(&self) -> f64 {
        if self.measured_s == 0.0 && self.modeled_s == 0.0 {
            1.0
        } else {
            self.measured_s / self.modeled_s
        }
    }

    /// JSON row (non-finite ratios serialize as `null`).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj()
            .set("phase", self.phase.as_str())
            .set("measured_s", self.measured_s)
            .set("modeled_s", self.modeled_s)
            .set("ratio", self.ratio())
    }
}

/// Reconciles measured per-phase time against a cost model's per-phase
/// totals: one [`PhaseRatio`] per phase named on *either* side (absent
/// sides read as zero — nothing is allowed to hide), sorted by phase.
pub fn reconcile_phases(
    measured_ns: &[(String, u64)],
    modeled_s: &[(String, f64)],
) -> Vec<PhaseRatio> {
    let mut phases: BTreeMap<&str, (f64, f64)> = BTreeMap::new();
    for (p, ns) in measured_ns {
        phases.entry(p).or_default().0 += *ns as f64 / 1e9;
    }
    for (p, s) in modeled_s {
        phases.entry(p).or_default().1 += s;
    }
    phases
        .into_iter()
        .map(|(p, (measured_s, modeled_s))| PhaseRatio {
            phase: p.to_string(),
            measured_s,
            modeled_s,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(pid: u32, tid: u32, start_us: f64, dur_us: f64) -> Span {
        Span { name: "t".into(), cat: "test", pid, tid, ts_us: start_us, dur_us }
    }

    #[test]
    fn union_counts_overlaps_once() {
        assert_eq!(union_ns(&[]), 0);
        assert_eq!(union_ns(&[(0, 10), (5, 20), (30, 40)]), 30);
        assert_eq!(union_ns(&[(0, 100), (10, 20)]), 100, "nested spans collapse");
        assert_eq!(union_ns(&[(0, 10), (10, 20)]), 20, "touching intervals merge");
    }

    #[test]
    fn longest_chain_picks_the_best_non_overlapping_sequence() {
        assert_eq!(longest_chain_ns(&[]), 0);
        // One long interval beats two short chained ones...
        assert_eq!(longest_chain_ns(&[(0, 50), (0, 10), (20, 30)]), 50);
        // ...until the chain outweighs it.
        assert_eq!(longest_chain_ns(&[(0, 50), (0, 30), (30, 70)]), 70);
        // Overlapping intervals cannot chain.
        assert_eq!(longest_chain_ns(&[(0, 30), (29, 60)]), 31);
    }

    #[test]
    fn dag_chain_is_bounded_by_the_temporal_chain() {
        // Four instances; DAG edges 0→2, 1→2, 2→3, but instance 1 ends
        // after 2 starts, so its edge is temporally inconsistent and drops.
        let ivs = [(0u64, 10u64), (0, 25), (20, 40), (40, 45)];
        let edges = [(0usize, 2usize), (1, 2), (2, 3)];
        let dag = dag_span_chain_ns(&ivs, &edges);
        assert_eq!(dag, 10 + 20 + 5);
        assert!(dag <= longest_chain_ns(&ivs));
        // Edges out of range or self-loops are ignored, not fatal.
        assert_eq!(dag_span_chain_ns(&ivs, &[(0, 0), (9, 1)]), 25);
        assert_eq!(dag_span_chain_ns(&[], &[]), 0);
    }

    #[test]
    fn profile_partitions_every_lane_exactly() {
        // Lane (0,0): nested spans (busy = union = 30us); lane (1,1):
        // disjoint spans (busy = 15us). Wall supplied as 100us.
        let spans = vec![
            span(0, 0, 0.0, 30.0),
            span(0, 0, 5.0, 10.0),
            span(1, 1, 10.0, 5.0),
            span(1, 1, 50.0, 10.0),
        ];
        let waits = [((1u32, 1u32), 4_000u64), ((0, 0), 999_999_999)];
        let overheads = [((0u32, 0u32), 2_000u64), ((1, 1), 999_999_999)];
        let p = Profile::build(
            &spans,
            ProfileInputs { wall_s: 100e-6, comm_wait_ns: &waits, overhead_ns: &overheads },
        );
        assert_eq!(p.wall_ns, 100_000);
        assert_eq!(p.workers.len(), 2);
        let w0 = &p.workers[0];
        assert_eq!((w0.pid, w0.tid, w0.busy_ns), (0, 0, 30_000));
        assert_eq!(w0.comm_wait_ns, 30_000, "wait clamps to busy");
        assert_eq!(w0.compute_ns, 0);
        assert_eq!(w0.overhead_ns, 2_000);
        assert_eq!(w0.idle_ns, 68_000);
        let w1 = &p.workers[1];
        assert_eq!(w1.busy_ns, 15_000);
        assert_eq!(w1.comm_wait_ns, 4_000);
        assert_eq!(w1.compute_ns, 11_000);
        assert_eq!(w1.overhead_ns, 85_000, "overhead clamps to wall - busy");
        assert_eq!(w1.idle_ns, 0);
        for w in &p.workers {
            assert!(w.partition_exact());
        }
        // The temporal chain: (0,30) then (50,60) = 40us.
        assert_eq!(p.measured_cp_ns, 40_000);
        assert!(p.measured_cp_ns <= p.wall_ns);
        let json = p.to_json();
        assert_eq!(json.get("wall_ns").and_then(JsonValue::as_u64), Some(100_000));
        assert_eq!(json.get("per_worker").and_then(JsonValue::as_array).unwrap().len(), 2);
    }

    #[test]
    fn profile_wall_extends_to_the_latest_span() {
        let spans = vec![span(0, 0, 10.0, 10.0)];
        let p = Profile::build(&spans, ProfileInputs::default());
        assert_eq!(p.wall_ns, 20_000, "supplied wall 0 stretches to the last span end");
        assert_eq!(p.workers[0].idle_ns, 10_000, "the leading gap is idle");
        assert!(p.workers[0].partition_exact());
        let empty = Profile::build(&[], ProfileInputs::default());
        assert_eq!((empty.wall_ns, empty.spans, empty.workers.len()), (0, 0, 0));
    }

    #[test]
    fn merge_and_intersect_are_exact() {
        assert_eq!(merge_intervals(&[]), vec![]);
        assert_eq!(
            merge_intervals(&[(5, 20), (0, 10), (30, 40), (40, 50), (2, 2)]),
            vec![(0, 20), (30, 50)],
            "overlaps and touching intervals merge; empty intervals drop"
        );
        assert_eq!(intersection_ns(&[(0, 20), (30, 50)], &[(10, 35)]), 10 + 5);
        assert_eq!(intersection_ns(&[(0, 10)], &[(10, 20)]), 0, "touching is not overlap");
        assert_eq!(intersection_ns(&[], &[(0, 10)]), 0);
    }

    #[test]
    fn idle_overlap_measures_waiting_during_a_phase() {
        // Lane (0,0) runs a panel span [0,40); lane (0,1) runs a gemm
        // [10,20) and is otherwise idle. Idle-during-panel for (0,1) is
        // [0,10) + [20,40) = 30us; lane (0,0) is never idle inside it.
        let mut panel = span(0, 0, 0.0, 40.0);
        panel.cat = "panel_finish";
        let spans = vec![panel, span(0, 1, 10.0, 10.0)];
        let wait = idle_overlap_ns(&spans, |c| c.starts_with("panel"), 100_000);
        // Lane (0,1): 30us inside the panel window. Lane (0,0): 0.
        assert_eq!(wait, 30_000);
        // No phase spans -> no wait, regardless of idle time.
        assert_eq!(idle_overlap_ns(&spans, |c| c == "nope", 100_000), 0);
        // Wall extends to the latest span end even if wall_ns is smaller.
        assert_eq!(idle_overlap_ns(&spans, |c| c.starts_with("panel"), 0), 30_000);
    }

    #[test]
    fn phase_reconciliation_covers_both_sides() {
        let spans = vec![span(0, 0, 0.0, 10.0), span(0, 1, 0.0, 20.0), span(1, 0, 0.0, 5.0)];
        let mut with_cats = spans.clone();
        with_cats[2].cat = "gemm";
        let measured = measured_phase_ns(&with_cats);
        assert_eq!(measured, vec![("gemm".into(), 5_000), ("test".into(), 30_000)]);
        let modeled = [("gemm".to_string(), 10e-6), ("panel".to_string(), 1e-6)];
        let ratios = reconcile_phases(&measured, &modeled);
        assert_eq!(ratios.len(), 3, "union of measured and modeled phases");
        let gemm = ratios.iter().find(|r| r.phase == "gemm").unwrap();
        assert!((gemm.ratio() - 0.5).abs() < 1e-12);
        let panel = ratios.iter().find(|r| r.phase == "panel").unwrap();
        assert_eq!(panel.measured_s, 0.0);
        let test = ratios.iter().find(|r| r.phase == "test").unwrap();
        assert!(test.ratio().is_infinite(), "unmodeled measured phase is flagged, not hidden");
        assert_eq!(PhaseRatio { phase: "x".into(), measured_s: 0.0, modeled_s: 0.0 }.ratio(), 1.0);
    }
}
