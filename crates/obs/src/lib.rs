//! # calu-obs — unified observability for the CALU reproduction
//!
//! The paper's central claims are *communication counts* — words and
//! messages per rank — and schedule quality. Every layer of the repo
//! produces evidence of both (executor timings, modeled rank traces,
//! mailbox traffic, serve-layer counters), but until this crate each
//! layer reported it in its own dialect. `calu-obs` is the shared,
//! dependency-free vocabulary:
//!
//! * [`trace`] — a lock-cheap [`Recorder`] of typed [`Span`]s (task name,
//!   rank, worker, wall-clock interval) with export to the Chrome
//!   `trace_events` JSON format (one *pid* per rank, one *tid* per
//!   worker), so any real or modeled schedule opens in `chrome://tracing`
//!   / Perfetto. A parser ([`trace::parse_chrome_trace`]) validates
//!   round trips in tests and CI.
//! * [`metrics`] — counters, gauges, and **deterministic** log-bucketed
//!   histograms behind one [`Metrics`] registry with a canonical
//!   [`Metrics::snapshot`] → JSON path; the bench binaries and the
//!   serving layer all report through it.
//! * [`ledger`] — the [`CommLedger`]: per-rank, per-term message/word
//!   counters recorded at the `dist_rt` mailbox boundary, reconciled
//!   against the paper's cost skeletons ([`CommLedgerReport::reconcile`])
//!   term by term — TSLU butterfly legs, pivot/panel/U/W broadcasts —
//!   turning "matches to first order" into asserted equality or a
//!   quantified gap.
//! * [`analyze`] — the analysis tier over the other three: ingests spans
//!   (live or parsed from a Chrome trace) plus the ledger's wait rows and
//!   the executors' queue delays and produces a [`Profile`] — per-worker
//!   wall-clock partitioned into compute / comm-wait / overhead / idle
//!   with an *exact* sum-to-wall invariant — alongside the measured
//!   critical path ([`analyze::longest_chain_ns`], optionally restricted
//!   to DAG edges via [`analyze::dag_span_chain_ns`]) and per-phase
//!   model-vs-measured reconciliation ([`analyze::reconcile_phases`]).
//! * [`json`] — the minimal [`JsonValue`] writer/parser everything above
//!   serializes through (the container has no serde; determinism is the
//!   point, not convenience).
//!
//! The crate depends on `std` only, so every other crate in the
//! workspace — `calu-runtime`, `calu-netsim`, `calu-core`, `calu-bench`
//! — can depend on it without cycles.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analyze;
pub mod json;
pub mod ledger;
pub mod metrics;
pub mod trace;

pub use analyze::{
    idle_overlap_ns, intersection_ns, merge_intervals, PhaseRatio, Profile, ProfileInputs,
    WorkerProfile,
};
pub use json::JsonValue;
pub use ledger::{CommCounts, CommDelta, CommLedger, CommLedgerReport, CommRow, CommTerm, WaitRow};
pub use metrics::{Histogram, Metrics, MetricsSnapshot};
pub use trace::{chrome_trace, parse_chrome_trace, Recorder, Span};
