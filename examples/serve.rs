//! Serving tour: register a matrix with [`SolverService`], submit a burst
//! of right-hand sides, let one `process` pass coalesce them into batched
//! solves on the runtime DAG, and watch the factor cache amortize the
//! O(n³) work across requests.
//!
//! Run: `cargo run --release --example serve`

use calu_repro::core::{CaluOpts, ServeOpts, SolverService};
use calu_repro::matrix::gen;
use calu_repro::stability::backward_error_inf;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 256;
    let mut rng = StdRng::seed_from_u64(2008);
    let a = gen::diag_dominant(&mut rng, n);

    let opts = ServeOpts {
        max_batch: 16,
        calu: CaluOpts { block: 32, p: 4, ..Default::default() },
        ..Default::default()
    };
    let mut svc: SolverService = SolverService::new(opts);
    let key = svc.register(42, a.clone());
    println!("registered {n}x{n} system as id=42 (generation {})", key.generation);

    // A burst of requests against the same matrix...
    let rhs: Vec<Vec<f64>> = (0..24)
        .map(|_| {
            let col = gen::randn(&mut rng, n, 1);
            col.col(0).to_vec()
        })
        .collect();
    let tickets: Vec<_> =
        rhs.iter().map(|b| svc.submit(42, b.clone()).expect("queue has room")).collect();
    println!("submitted {} requests, queue depth {}", tickets.len(), svc.queued());

    // ...all served by ONE factorization and two batched solve passes.
    let rep = svc.process();
    println!(
        "process: {} completed in {} batched solves, {} factorization(s)",
        rep.completed, rep.batches, rep.factored
    );

    let mut worst = 0.0_f64;
    for (t, b) in tickets.into_iter().zip(&rhs) {
        let x = svc.try_take(t).expect("processed").expect("diag-dominant is nonsingular");
        worst = worst.max(backward_error_inf(&a, &x, b));
    }
    println!("worst backward error across the burst: {worst:.3e}");

    // The next burst is pure cache hits: no factorization at all.
    let t = svc.submit(42, rhs[0].clone()).expect("queue has room");
    let rep = svc.process();
    svc.try_take(t).expect("processed").expect("nonsingular");
    let stats = svc.cache_stats();
    println!(
        "second pass: factored={} — cache {} hits / {} misses, {} entries ({} bytes)",
        rep.factored, stats.hits, stats.misses, stats.entries, stats.bytes
    );

    // Re-registering bumps the generation and invalidates the cache entry.
    let key2 = svc.register(42, a);
    println!("re-registered id=42: generation {} -> {}", key.generation, key2.generation);
    println!("entries after invalidation: {}", svc.cache_stats().entries);
}
