//! Renders per-rank timelines of the distributed panel factorizations on
//! the simulated IBM POWER5: TSLU's handful of exchanges versus PDGETF2's
//! per-column picket fence of messages — the paper's latency argument,
//! made visible.
//!
//! Run: `cargo run --release --example trace_gantt`

use calu_repro::core::dist::{sim_pdgetf2_panel, sim_tslu_panel};
use calu_repro::core::LocalLu;
use calu_repro::matrix::gen;
use calu_repro::netsim::{render_gantt_labeled, MachineConfig, TimeBreakdown};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let (m, b, p) = (2_000, 16, 8);
    let mut rng = StdRng::seed_from_u64(42);
    let a = gen::randn(&mut rng, m, b);
    let mch = MachineConfig::power5();

    println!("Panel factorization of a {m}x{b} panel over {p} simulated POWER5 ranks\n");
    let rank_labels: Vec<String> = (0..p).map(|r| format!("rank{r}")).collect();

    let (rep_t, traces_t) = sim_tslu_panel_traced(&a, p, &mch);
    println!("== TSLU (tournament pivoting): {:.3} ms makespan", rep_t_ms(&rep_t));
    println!("{}", render_gantt_labeled(&traces_t, &rank_labels, 100));
    println!("   attribution: {}\n", TimeBreakdown::from_report(&rep_t).one_line());

    let (rep_p, traces_p) = sim_pdgetf2_panel_traced(&a, p, &mch);
    println!("== PDGETF2 (per-column pivoting): {:.3} ms makespan", rep_t_ms(&rep_p));
    println!("{}", render_gantt_labeled(&traces_p, &rank_labels, 100));
    println!("   attribution: {}\n", TimeBreakdown::from_report(&rep_p).one_line());

    println!(
        "PDGETF2 / TSLU time ratio: {:.2}  (paper Table 3 reports up to 4.37 on POWER5)",
        rep_p.makespan() / rep_t.makespan()
    );
    println!(
        "messages: TSLU {} vs PDGETF2 {}  (the factor-b reduction of Section 5)",
        rep_t.total_msgs(),
        rep_p.total_msgs()
    );
}

fn rep_t_ms(r: &calu_repro::netsim::SimReport) -> f64 {
    r.makespan() * 1e3
}

// The real-data panel drivers run under `run_sim`; re-run them under the
// traced runner by wrapping their rank programs. The drivers expose
// non-traced entry points, so trace with an equal-cost skeleton instead —
// same schedule, same charges (cross-checked in calu-core's tests).
fn sim_tslu_panel_traced(
    a: &calu_repro::matrix::Matrix,
    p: usize,
    mch: &MachineConfig,
) -> (calu_repro::netsim::SimReport, Vec<calu_repro::netsim::RankTrace>) {
    let (rep, _) = sim_tslu_panel(a, p, LocalLu::Classic, mch.clone());
    let skel = skeleton_traced(a.rows(), a.cols(), p, mch, true);
    (rep, skel)
}

fn sim_pdgetf2_panel_traced(
    a: &calu_repro::matrix::Matrix,
    p: usize,
    mch: &MachineConfig,
) -> (calu_repro::netsim::SimReport, Vec<calu_repro::netsim::RankTrace>) {
    let (rep, _) = sim_pdgetf2_panel(a, p, mch.clone());
    let skel = skeleton_traced(a.rows(), a.cols(), p, mch, false);
    (rep, skel)
}

fn skeleton_traced(
    m: usize,
    b: usize,
    p: usize,
    mch: &MachineConfig,
    tslu: bool,
) -> Vec<calu_repro::netsim::RankTrace> {
    use calu_repro::core::tslu::partition_rows;
    use calu_repro::netsim::machine::{flops_ger, flops_getf2, flops_trsm_right};
    use calu_repro::netsim::{run_sim_traced, Group, Link, Payload};

    let parts = partition_rows(m, p);
    let p_eff = parts.len();
    let (_rep, traces, _) = run_sim_traced(p_eff, mch.clone(), |cm| {
        let rows = parts[cm.rank()].len();
        let group = Group::new((0..p_eff).collect(), cm.rank(), Link::Col, 42);
        let mach = cm.machine().clone();
        if tslu {
            cm.compute(mach.t_getf2(rows, b), flops_getf2(rows, b));
            let words = 2 + b + b * b;
            group.allreduce(cm, Payload::Empty, words, |cm, a, _b| {
                cm.compute(mach.t_getf2(2 * b, b), flops_getf2(2 * b, b));
                a
            });
            cm.compute(mach.t_getf2(b, b), flops_getf2(b, b));
            cm.compute(mach.t_trsm_right(rows, b), flops_trsm_right(rows, b));
        } else {
            let range = parts[cm.rank()].clone();
            let words = b + 2;
            for j in 0..b {
                let lo = range.start.max(j);
                let active = range.end.saturating_sub(lo);
                cm.compute(active as f64 * mach.gamma1, 0.0);
                let r = group.reduce(cm, Payload::Empty, words, |_cm, a, _b| a);
                group.bcast(cm, 0, r.unwrap_or(Payload::Empty), words);
                let below = range.end.saturating_sub(range.start.max(j + 1));
                if below > 0 {
                    cm.compute(mach.gamma_div + below as f64 * mach.gamma1, below as f64);
                    if j + 1 < b {
                        cm.compute(mach.t_ger(below, b - j - 1), flops_ger(below, b - j - 1));
                    }
                }
            }
        }
    });
    traces
}
