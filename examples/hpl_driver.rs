//! A miniature HPL-style acceptance driver (Section 6.1): generate the
//! benchmark's random system, factor it with CALU and with GEPP, solve,
//! iteratively refine, and judge both against HPL's three residual gates —
//! the workflow behind the paper's suggestion that ca-pivoting "could be
//! used for evaluating the performance of parallel computers".
//!
//! Run: `cargo run --release --example hpl_driver [n]`

use calu_repro::core::{calu_factor, gepp_factor, CaluOpts, LocalLu, LuFactors};
use calu_repro::matrix::gen;
use calu_repro::matrix::lapack::{gecon, getrf, GetrfOpts};
use calu_repro::matrix::norms::mat_norm_1;
use calu_repro::matrix::{Matrix, NoObs};
use calu_repro::stability::{componentwise_backward_error, hpl_tests};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn acceptance(name: &str, a: &Matrix, rhs: &[f64], factor: impl FnOnce() -> LuFactors) {
    let n = a.rows();
    let t0 = Instant::now();
    let f = factor();
    let dt = t0.elapsed().as_secs_f64();
    let x = f.solve(rhs);
    let hpl = hpl_tests(a, &x, rhs);
    let wb = componentwise_backward_error(a, &x, rhs);
    let (x2, info) = f.solve_refined(a, rhs, 2);
    let wb2 = componentwise_backward_error(a, &x2, rhs);
    let flops = 2.0 / 3.0 * (n as f64).powi(3);
    println!("\n== {name}");
    println!("   factor time {dt:.3}s  ({:.2} GFLOP/s host wall-clock)", flops / dt / 1e9);
    println!(
        "   HPL1 {:.3e}  HPL2 {:.3e}  HPL3 {:.3e}  ->  {}",
        hpl.hpl1,
        hpl.hpl2,
        hpl.hpl3,
        if hpl.passes() { "PASSED (all < 16)" } else { "FAILED" }
    );
    println!("   componentwise backward error: {wb:.3e}");
    println!(
        "   after {} refinement step(s): {wb2:.3e}  (residual {:.3e})",
        info.iterations, info.final_residual
    );
    assert!(hpl.passes(), "{name} must pass the HPL gates");
}

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1024);
    let b = (n / 16).clamp(32, 128);
    let mut rng = StdRng::seed_from_u64(77);

    println!("HPL-style acceptance run, n = {n} (block b = {b})\n");
    let a = gen::randn(&mut rng, n, n);
    let rhs = gen::hpl_rhs(&mut rng, n);

    // Condition estimate first (cheap: one factorization + O(n^2) solves).
    let anorm = mat_norm_1(a.view());
    let mut lu = a.clone();
    let mut ipiv = vec![0usize; n];
    getrf(lu.view_mut(), &mut ipiv, GetrfOpts::default(), &mut NoObs).unwrap();
    let rcond = gecon(lu.view(), &ipiv, anorm);
    println!("estimated kappa_1(A) = {:.2e}  (rcond {rcond:.2e})", 1.0 / rcond);

    acceptance("CALU (ca-pivoting, 8-way tournament)", &a, &rhs, || {
        calu_factor(
            &a,
            CaluOpts {
                block: b,
                p: 8,
                local: LocalLu::Recursive,
                parallel_update: true,
                ..Default::default()
            },
        )
        .unwrap()
    });
    acceptance("GEPP (partial pivoting)", &a, &rhs, || gepp_factor(&a, b).unwrap());
}
