//! Trace-export tour, self-validating (CI runs it): serve a burst of
//! requests through [`SolverService`], export the service's span trace as
//! Chrome trace-event JSON plus the unified metrics snapshot, then parse
//! both back and assert the round trip — the same path `serve_calu` uses
//! to produce the committed `TRACE_serve.json`.
//!
//! Open the emitted file in `chrome://tracing` or <https://ui.perfetto.dev>:
//! pid lanes are ranks (0 for the shared-memory runtime), tid lanes are
//! executor workers, and the `serve`-category intervals wrap each
//! `process` pass around the task spans it executed.
//!
//! Run: `cargo run --release --example trace_export [OUT.json]`

use calu_repro::core::{CaluOpts, RuntimeOpts, ServeOpts, SolverService};
use calu_repro::matrix::gen;
use calu_repro::obs::{chrome_trace, parse_chrome_trace, JsonValue};
use calu_repro::runtime::ExecutorKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let out = std::env::args().nth(1).unwrap_or_else(|| "TRACE_example.json".into());
    let n = 192;
    let mut rng = StdRng::seed_from_u64(2008);
    let a = gen::diag_dominant(&mut rng, n);

    let opts = ServeOpts {
        max_batch: 8,
        calu: CaluOpts { block: 32, p: 4, ..Default::default() },
        rt: RuntimeOpts {
            lookahead: 2,
            executor: ExecutorKind::Threaded { threads: 2 },
            parallel_panel: false,
        },
        ..Default::default()
    };
    let mut svc: SolverService = SolverService::new(opts);
    svc.register(1, a);

    // Two passes: the first factors + solves, the second is pure cache hits.
    for pass in 0..2 {
        let tickets: Vec<_> = (0..6)
            .map(|_| {
                let col = gen::randn(&mut rng, n, 1);
                svc.submit(1, col.col(0).to_vec()).expect("queue has room")
            })
            .collect();
        let rep = svc.process();
        println!("pass {pass}: completed={} factored={}", rep.completed, rep.factored);
        for t in tickets {
            svc.try_take(t).expect("processed").expect("nonsingular");
        }
    }

    // Export: every span the service recorded, as Chrome trace events.
    let spans = svc.spans();
    let trace = chrome_trace(&spans);
    std::fs::write(&out, &trace).expect("write trace");
    println!("wrote {out}: {} spans", spans.len());

    // Validate the export end to end: it must parse back with every span
    // intact, timestamps monotone (the parser enforces that), and the
    // serve-pass intervals present.
    let parsed = parse_chrome_trace(&trace).expect("emitted trace parses");
    assert_eq!(parsed.len(), spans.len(), "round trip keeps every span");
    let passes = parsed.iter().filter(|s| s.name == "process").count();
    assert_eq!(passes, 2, "one serve interval per process pass");
    assert!(parsed.iter().any(|s| s.name.contains("Panel")), "factorization task spans present");
    assert!(parsed.iter().any(|s| s.name.contains("Solve")), "solve task spans present");
    println!("round trip ✓ ({passes} process passes, monotone timestamps)");

    // The metrics snapshot rides the same unified JSON path.
    let snapshot = svc.metrics_snapshot();
    let reparsed = JsonValue::parse(&snapshot.pretty()).expect("snapshot JSON parses");
    let counter = |name: &str| {
        reparsed.get("counters").and_then(|c| c.get(name)).and_then(JsonValue::as_u64).unwrap_or(0)
    };
    assert_eq!(counter("serve.submitted"), 12);
    assert_eq!(counter("serve.completed"), 12);
    assert_eq!(counter("serve.factored"), 1, "second pass must be a cache hit");
    println!(
        "metrics ✓ submitted={} completed={} factored={} cache hits={}",
        counter("serve.submitted"),
        counter("serve.completed"),
        counter("serve.factored"),
        counter("serve.cache.hits")
    );
}
