//! CALU on the simulated IBM POWER5: runs the *real-data* distributed
//! algorithm on a 2D block-cyclic grid of simulated ranks, verifies the
//! factors against the problem, and prints the virtual-time accounting the
//! paper's tables are built from (per-rank compute/idle/messages, critical
//! path, modeled GFLOP/s).
//!
//! Run: `cargo run --release --example distributed_sim`

use calu_repro::core::dist::{dist_calu_factor, DistCaluConfig};
use calu_repro::core::{LocalLu, LuFactors};
use calu_repro::matrix::{gen, Matrix};
use calu_repro::netsim::MachineConfig;
use calu_repro::stability::backward_error_inf;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 256;
    let cfg = DistCaluConfig { b: 32, pr: 2, pc: 2, local: LocalLu::Recursive };
    let machine = MachineConfig::power5();
    println!(
        "distributed CALU: {n}x{n}, b = {}, grid {}x{} on the {} model\n",
        cfg.b, cfg.pr, cfg.pc, machine.name
    );

    let mut rng = StdRng::seed_from_u64(7);
    let a: Matrix = gen::randn(&mut rng, n, n);
    let b_rhs = gen::hpl_rhs(&mut rng, n);

    let (report, d) = dist_calu_factor(&a, cfg, machine);

    println!("rank  virtual_time  compute      idle         msgs   words");
    for (r, s) in report.per_rank.iter().enumerate() {
        println!(
            "{r:>4}  {:>10.3e}  {:>10.3e}  {:>10.3e}  {:>5}  {:>7}",
            s.time, s.compute_time, s.idle_time, s.msgs_sent, s.words_sent
        );
    }
    println!("\ncritical path (makespan): {:.3e} s (virtual)", report.makespan());
    println!("modeled aggregate rate:   {:.2} GFLOP/s", report.gflops());
    println!("total messages:           {}", report.total_msgs());

    // The simulated run computes the *real* factorization:
    let f = LuFactors { lu: d.lu, ipiv: d.ipiv };
    let x = f.solve(&b_rhs);
    let bw = backward_error_inf(&a, &x, &b_rhs);
    println!("\nsolution backward error from the simulated factors: {bw:.3e}");
    assert!(bw < 1e-12);
}
