//! Tile-major storage tour: convert a matrix to tiles, iterate per tile,
//! print the block-cyclic ownership map, factor on the tile-backed
//! runtime path, and round-trip back — the storage layer the task-graph
//! runtime and the simulated-distributed layer now share.
//!
//! Run: `cargo run --release --example tile_layout`

use calu_repro::core::{calu_factor, tiled_calu_tiles, CaluOpts};
use calu_repro::matrix::{gen, Matrix, NoObs, TileLayout, TileMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let (m, n, b) = (10usize, 7usize, 4usize);
    let mut rng = StdRng::seed_from_u64(2008);
    let a: Matrix = gen::randn(&mut rng, m, n);

    // Conversion: tiles contiguous in memory, ragged at both edges.
    let tiles = TileMatrix::from_matrix(&a, b, b);
    let layout = tiles.layout();
    println!(
        "{m}x{n} matrix in {b}x{b} tiles -> {}x{} tile grid",
        layout.tile_rows(),
        layout.tile_cols()
    );

    // Per-tile iteration: every tile is a plain contiguous MatView.
    for (ti, tj, t) in tiles.tiles() {
        println!(
            "  tile ({ti},{tj}): {}x{} at buffer offset {:5}, |max| = {:.3}",
            t.rows(),
            t.cols(),
            layout.tile_offset(ti, tj),
            t.max_abs()
        );
    }

    // The same geometry is the ScaLAPACK block-cyclic map: attach a
    // 2x2 process grid and print who owns which tile.
    let owned = TileLayout::new(m, n, b, b).with_grid(2, 2);
    println!("\nblock-cyclic owners on a 2x2 grid (rank = pcol*Pr + prow):");
    for ti in 0..owned.tile_rows() {
        let row: Vec<String> =
            (0..owned.tile_cols()).map(|tj| format!("r{}", owned.owner(ti, tj))).collect();
        println!("  tile row {ti}: {}", row.join(" "));
    }
    println!(
        "rank 0 owns {}x{} local elements (its local storage is itself a TileMatrix)",
        owned.local_rows(0),
        owned.local_cols(0)
    );

    // Factor on the tile-backed runtime path; factors convert back
    // bitwise identical to the sequential sweep on flat storage.
    let (m, n, b) = (256usize, 256usize, 32usize);
    let a: Matrix = gen::randn(&mut rng, m, n);
    let opts = CaluOpts { block: b, p: 4, ..Default::default() };
    let mut work = TileMatrix::from_matrix(&a, b, b);
    let ipiv = tiled_calu_tiles(&mut work, opts, &mut NoObs).expect("nonsingular");
    let seq = calu_factor(&a, opts).expect("nonsingular");
    let diff = work.to_matrix().max_abs_diff(&seq.lu);
    println!("\n{m}x{m} tile-backed runtime CALU vs sequential: max diff = {diff:e} (bitwise)");
    assert_eq!(diff, 0.0);
    assert_eq!(ipiv, seq.ipiv);
}
