//! Figure 1 walkthrough: the paper's 16x2 example matrix on 4 processors,
//! printing every step of the TSLU tournament — the local GEPP candidates,
//! each reduction match, and the final winners — then the factorization
//! with the winners pivoted on top.
//!
//! Run: `cargo run --release --example tournament_walkthrough`

use calu_repro::core::tournament::{reduce_pair, Candidates};
use calu_repro::core::tslu::{tslu_factor, winners_to_ipiv, LocalLu};
use calu_repro::matrix::{Matrix, NoObs};

fn show(tag: &str, c: &Candidates) {
    let rows: Vec<String> = (0..c.len())
        .map(|i| {
            let vals: Vec<String> =
                (0..c.width()).map(|j| format!("{:>4}", c.block[(i, j)])).collect();
            format!("row {:>2} [{}]", c.rows[i], vals.join(" "))
        })
        .collect();
    println!("  {tag}: {}", rows.join("   "));
}

fn main() {
    // The matrix of paper Section 3 / Figure 1 (written as 16 rows of 2).
    let a = Matrix::from_rows(&[
        &[2.0, 4.0],
        &[0.0, 1.0],
        &[2.0, 0.0],
        &[0.0, 0.0],
        &[0.0, 1.0],
        &[1.0, 4.0],
        &[2.0, 1.0],
        &[0.0, 2.0],
        &[2.0, 0.0],
        &[1.0, 2.0],
        &[4.0, 1.0],
        &[1.0, 0.0],
        &[0.0, 0.0],
        &[0.0, 2.0],
        &[1.0, 0.0],
        &[4.0, 2.0],
    ]);
    println!("TSLU on the paper's 16x2 example, 4 processors of 4 rows each\n");

    // Step 1: local GEPP per block-row.
    let mut leaves = Vec::new();
    for p in 0..4 {
        let rows: Vec<usize> = (4 * p..4 * p + 4).collect();
        let block = a.view().submatrix(4 * p, 0, 4, 2).to_matrix();
        let cand = Candidates::from_block_row(&block, &rows);
        show(&format!("P{p} local pivots"), &cand);
        leaves.push(cand);
    }

    // Step 2: first tournament level (P0 vs P1, P2 vs P3).
    println!();
    let s01 = reduce_pair(&leaves[0], &leaves[1]);
    let s23 = reduce_pair(&leaves[2], &leaves[3]);
    show("level 1, P0+P1", &s01);
    show("level 1, P2+P3", &s23);

    // Step 3: root.
    println!();
    let root = reduce_pair(&s01, &s23);
    show("level 2 (winners)", &root);

    // Factor with the winners pivoted on top.
    let winners = root.rows.clone();
    let ipiv = winners_to_ipiv(&winners, 16);
    println!("\nwinner rows: {winners:?}");
    println!("swap sequence (LAPACK ipiv): {ipiv:?}");

    let mut panel = a.clone();
    let r = tslu_factor(panel.view_mut(), 4, LocalLu::Classic, &mut NoObs).unwrap();
    assert_eq!(r.pivot_rows, winners);
    println!("\npacked factors (L below diagonal, U on/above):");
    println!("{panel:?}");

    // The paper notes the winners coincide with GEPP's pivots here: the
    // leading pivot carries the global column max |a| = 4.
    assert_eq!(a[(winners[0], 0)].abs(), 4.0);
    let max_l = panel.unit_lower().as_slice().iter().fold(0.0_f64, |m, &v| m.max(v.abs()));
    println!("max |L| = {max_l} (ca-pivoting guarantees <= 2^(levels); observed <= 3 in practice)");
}
