//! Shared-memory CALU scaling: the paper's future-work question ("the
//! suitability of the new ca-pivoting strategy for parallel LU on multicore
//! architectures"). Factors the same matrix with 1..N rayon threads and
//! reports wall-clock speedup of parallel CALU over sequential CALU and
//! GEPP.
//!
//! Run: `cargo run --release --example multicore_scaling [n]`

use calu_repro::core::{calu_factor, gepp_factor, par_calu_factor, CaluOpts};
use calu_repro::matrix::{gen, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn time<F: FnMut()>(mut f: F) -> f64 {
    // Best of three for stability on a busy host.
    (0..3)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(768);
    let mut rng = StdRng::seed_from_u64(99);
    let a: Matrix = gen::randn(&mut rng, n, n);
    let opts = CaluOpts { block: 64, p: 4, ..Default::default() };

    let t_gepp = time(|| {
        gepp_factor(&a, 64).unwrap();
    });
    let t_seq = time(|| {
        calu_factor(&a, opts).unwrap();
    });

    println!("n = {n}, b = 64, tournament p = 4");
    println!("  GEPP (blocked getrf):   {t_gepp:.3}s");
    println!("  CALU sequential:        {t_seq:.3}s  ({:.2}x vs GEPP)", t_gepp / t_seq);

    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    for threads in [1usize, 2, cores.max(2)] {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        let t_par = pool.install(|| {
            time(|| {
                par_calu_factor(&a, opts).unwrap();
            })
        });
        println!(
            "  CALU rayon x{threads}:          {t_par:.3}s  ({:.2}x vs sequential CALU)",
            t_seq / t_par
        );
    }

    // Factors are identical regardless of thread count (deterministic tree).
    let f1 = calu_factor(&a, opts).unwrap();
    let f2 = par_calu_factor(&a, opts).unwrap();
    assert_eq!(f1.ipiv, f2.ipiv);
    assert_eq!(f1.lu.max_abs_diff(&f2.lu), 0.0);
    println!("  (parallel factors bitwise identical to sequential: verified)");
}
