//! The distributed layer on the task-graph runtime, end to end: factors a
//! matrix over a 2D block-cyclic grid by driving each rank's work through
//! the per-rank `calu-runtime` DAG, verifies the factors bitwise against
//! the pre-refactor SPMD reference, and prints the **dual-layer Gantt** —
//! the modeled per-rank schedule of the distributed algorithm (compute,
//! communication, idle of every rank under the POWER5 α-β-γ model) stacked
//! above the wall-clock timeline of the runtime workers that actually
//! executed the tasks.
//!
//! Run: `cargo run --release --example dist_runtime`

use calu_repro::core::dist::{dist_calu_factor_spmd, DistCaluConfig};
use calu_repro::core::{dist_calu_factor_rt, DistRtOpts, LocalLu};
use calu_repro::matrix::{gen, Matrix};
use calu_repro::netsim::{render_gantt_labeled, MachineConfig, SegKind};
use calu_repro::runtime::ExecutorKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 256;
    let (pr, pc) = (2usize, 2usize);
    let depth = 2;
    let cfg = DistCaluConfig { b: 32, pr, pc, local: LocalLu::Recursive };
    let mch = MachineConfig::power5();
    println!(
        "runtime-driven distributed CALU: {n}x{n}, b={}, grid {pr}x{pc}, lookahead depth {depth}\n",
        cfg.b
    );

    let mut rng = StdRng::seed_from_u64(11);
    let a: Matrix = gen::randn(&mut rng, n, n);

    let rt = DistRtOpts {
        lookahead: depth,
        executor: ExecutorKind::Threaded { threads: 0 },
        ..Default::default()
    };
    let (rep, d) = dist_calu_factor_rt(&a, cfg, rt, mch.clone());

    // The DAG-driven factors are bitwise identical to the SPMD loop's.
    let (_r, reference) = dist_calu_factor_spmd(&a, cfg, mch.clone());
    assert_eq!(d.ipiv, reference.ipiv);
    assert_eq!(d.lu.max_abs_diff(&reference.lu), 0.0);
    println!("factors bitwise-identical to the SPMD reference ✓");
    println!(
        "{} tasks; modeled critical path {:.3e} s; modeled rank-schedule makespan {:.3e} s\n",
        rep.tasks, rep.critical_path, rep.makespan
    );

    // Layer 1: the distributed algorithm — every rank's modeled timeline,
    // compute and communication in one trace.
    println!("── distributed layer (modeled {} ranks, {}) ──", pr * pc, mch.name);
    let rank_labels: Vec<String> =
        (0..pr * pc).map(|r| format!("rank({},{})", r % pr, r / pr)).collect();
    print!("{}", render_gantt_labeled(&rep.traces, &rank_labels, 96));
    for (label, tr) in rank_labels.iter().zip(&rep.traces) {
        println!(
            "  {label}: compute {:.2e}s  comm {:.2e}s  idle {:.2e}s",
            tr.total(SegKind::Compute),
            tr.total(SegKind::Send),
            tr.total(SegKind::Idle)
        );
    }

    // Layer 2: the runtime — the wall-clock schedule of the executor
    // workers that ran the same DAG's task bodies on this host.
    let worker_traces = rep.exec.traces();
    let worker_labels: Vec<String> =
        (0..worker_traces.len()).map(|w| format!("worker{w}")).collect();
    println!(
        "\n── runtime layer ({} workers, wall-clock {:.1} ms) ──",
        rep.exec.workers,
        rep.exec.wall * 1e3
    );
    print!("{}", render_gantt_labeled(&worker_traces, &worker_labels, 96));

    println!(
        "\nper-rank modeled accounting: {} msgs, {} words, {:.2} modeled GFLOP/s aggregate",
        rep.sim.total_msgs(),
        rep.sim.total_words(),
        rep.sim.gflops()
    );
}
