//! The introduction's future-architectures argument as an interactive
//! sweep: evolve the POWER5 machine model forward under the canonical
//! technology rates and watch CALU's modeled advantage grow — then find,
//! for each year, the matrix size below which tournament pivoting pays
//! more than 5%.
//!
//! Run: `cargo run --release --example latency_trends`

use calu_repro::netsim::MachineConfig;
use calu_repro::perfmodel::{
    evolve, gain_crossover_size, speedup_at, t_calu, t_pdgetrf, TechTrend,
};

fn main() {
    let trend = TechTrend::default();
    let base = MachineConfig::power5();
    let (n, b, pr, pc) = (5_000usize, 50usize, 8usize, 8usize);

    println!("CALU vs PDGETRF on an evolving machine (Equations (2)/(3), {pr}x{pc} grid)");
    println!(
        "rates/yr: flops x{:.2}, bandwidth x{:.2}, latency x{:.2}\n",
        trend.flops_per_year, trend.bandwidth_per_year, trend.latency_per_year
    );
    println!(
        "{:>5} {:>9} {:>22} {:>22} {:>16}",
        "year", "speedup", "PDGETRF lat/bw/fl (%)", "CALU lat/bw/fl (%)", "crossover n"
    );

    for year in [0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 15.0] {
        let mch = evolve(&base, year, &trend);
        let g = t_pdgetrf(&mch, n, n, b, pr, pc);
        let c = t_calu(&mch, n, n, b, pr, pc);
        let s = speedup_at(&mch, n, b, pr, pc);
        let shares = |x: &calu_repro::perfmodel::CostBreakdown| {
            let t = x.total();
            format!(
                "{:4.1}/{:4.1}/{:4.1}",
                100.0 * x.latency / t,
                100.0 * x.bandwidth / t,
                100.0 * x.compute / t
            )
        };
        let cross = gain_crossover_size(&mch, b, pr, pc, 1.05, 64_000_000)
            .map(|c| format!("{c}"))
            .unwrap_or_else(|| ">64M".into());
        println!("{year:>5.0} {s:>9.2} {:>22} {:>22} {cross:>16}", shares(&g), shares(&c));
    }

    println!();
    println!("Reading: PDGETRF's latency share explodes as flops outrun the network;");
    println!("CALU's stays bounded because its panel sends O(n/b) messages, not O(n).");
    println!("The crossover size — below which CALU wins by >5% — grows every year,");
    println!("which is the introduction's claim: \"CALU is well suited for future");
    println!("parallel architectures\".");
}
