//! The task-graph runtime, made visible: builds the LU dependency DAG for
//! a small factorization, prints the deterministic critical-path-first
//! schedule the serial executor replays, shows how lookahead depth changes
//! the modeled critical path, then runs the threaded executor on real data
//! and renders the per-worker Gantt chart with the netsim tracer.
//!
//! Run: `cargo run --release --example runtime_dag`

use calu_repro::core::{calu_factor, runtime_calu_factor, CaluOpts, RuntimeOpts};
use calu_repro::matrix::{gen, Matrix};
use calu_repro::netsim::{render_gantt, MachineConfig};
use calu_repro::runtime::{modeled_time, ExecutorKind, LuDag, LuShape, PanelMode, Task};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let (m, n, nb) = (256usize, 256usize, 64usize);
    let shape = LuShape { m, n, nb };

    // --- 1. The DAG itself.
    let dag = LuDag::build(shape, 2);
    let (mut panels, mut swaps, mut trsms, mut gemms) = (0, 0, 0, 0);
    for t in dag.tasks() {
        match t {
            Task::Panel { .. } => panels += 1,
            Task::Swap { .. } => swaps += 1,
            Task::Trsm { .. } => trsms += 1,
            Task::Gemm { .. } => gemms += 1,
            Task::PanelElect { .. }
            | Task::PanelReduce { .. }
            | Task::PanelFinish { .. }
            | Task::PanelApply { .. } => {
                unreachable!("gathered DAGs emit no panel-subgraph tasks")
            }
            Task::Dist(_) | Task::Solve(_) => {
                unreachable!("factorization DAGs emit no dist/solve tasks")
            }
        }
    }
    println!("LU task DAG for {m}x{n}, nb={nb}, lookahead depth 2");
    println!("  {} tasks: {panels} Panel, {swaps} Swap, {trsms} Trsm, {gemms} Gemm", dag.len());

    // Resident mode replaces each Panel(k) with a per-tile tournament
    // subgraph (elect / reduce / finish / apply) — same Swap/Trsm/Gemm.
    let resident = LuDag::build_with(shape, 2, PanelMode::Resident);
    let count = |pfx: &str| resident.tasks().iter().filter(|t| t.cat() == pfx).count();
    println!(
        "  resident panel subgraph: {} tasks ({} elect, {} reduce, {} finish, {} apply)\n",
        resident.len(),
        count("panel_elect"),
        count("panel_reduce"),
        count("panel_finish"),
        count("panel_apply")
    );

    // --- 2. The deterministic serial schedule (what SerialExecutor replays).
    println!("serial critical-path-first schedule:");
    let order = dag.serial_schedule();
    let line: Vec<String> = order.iter().map(|&id| dag.tasks()[id].to_string()).collect();
    for chunk in line.chunks(6) {
        println!("  {}", chunk.join("  "));
    }

    // --- 3. Lookahead depth vs. modeled critical path (POWER5 kernel rates).
    let mch = MachineConfig::power5();
    println!("\nmodeled critical path vs. lookahead depth (POWER5 γ rates):");
    let total = dag.total_cost(|t| modeled_time(&shape, t, &mch));
    println!("  one worker (sum of tasks): {:>9.3} ms", total * 1e3);
    for depth in 1..=4 {
        let d = LuDag::build(shape, depth);
        let cp = d.critical_path(|t| modeled_time(&shape, t, &mch));
        println!(
            "  depth {depth}: critical path {:>9.3} ms  (parallelism {:.2}x)",
            cp * 1e3,
            total / cp
        );
    }

    // --- 4. A real run on the threaded executor, traced.
    let mut rng = StdRng::seed_from_u64(7);
    let a: Matrix = gen::randn(&mut rng, m, n);
    let opts = CaluOpts { block: nb, p: 4, ..Default::default() };
    let rt = RuntimeOpts {
        lookahead: 2,
        executor: ExecutorKind::Threaded { threads: 0 },
        parallel_panel: false,
    };
    let (f, report) = runtime_calu_factor(&a, opts, rt).expect("factorization succeeds");
    let seq = calu_factor(&a, opts).expect("sequential reference succeeds");
    assert_eq!(
        seq.lu.max_abs_diff(&f.lu),
        0.0,
        "runtime factors must be bitwise identical to sequential CALU"
    );

    println!(
        "\nthreaded run: {} workers, {:.3} ms wall, {:.3} ms busy ({} tasks)",
        report.workers,
        report.wall * 1e3,
        report.busy() * 1e3,
        report.order.len()
    );
    println!("{}", render_gantt(&report.traces(), 100));
    println!("factors verified bitwise identical to sequential CALU.");
}
