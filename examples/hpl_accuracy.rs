//! Mini-HPL: the accuracy gate the paper borrows from the LINPACK
//! benchmark (Section 6.1). Generates an HPL-style system, factors it with
//! CALU, solves with iterative refinement, and reports the three scaled
//! residuals — the run "passes" if all are below 16.
//!
//! Run: `cargo run --release --example hpl_accuracy [n]`

use calu_repro::core::{calu_inplace, CaluOpts, LuFactors, PivotStats};
use calu_repro::matrix::gen;
use calu_repro::stability::{componentwise_backward_error, hpl_tests};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1024);
    let mut rng = StdRng::seed_from_u64(42);

    println!("mini-HPL with CALU, n = {n}");
    let a = gen::randn(&mut rng, n, n);
    let b = gen::hpl_rhs(&mut rng, n);

    let mut stats = PivotStats::new(a.max_abs());
    let mut lu = a.clone();
    let t0 = std::time::Instant::now();
    let ipiv = calu_inplace(
        lu.view_mut(),
        CaluOpts { block: 64.min(n / 4).max(1), p: 8, parallel_update: true, ..Default::default() },
        &mut stats,
    )
    .expect("nonsingular");
    let t_factor = t0.elapsed().as_secs_f64();
    let f = LuFactors { lu, ipiv };

    let x = f.solve(&b);
    let wb0 = componentwise_backward_error(&a, &x, &b);
    let (x, info) = f.solve_refined(&a, &b, 2);
    let wb1 = componentwise_backward_error(&a, &x, &b);
    let rep = hpl_tests(&a, &x, &b);

    let gflops = (2.0 / 3.0) * (n as f64).powi(3) / t_factor / 1e9;
    println!("  factor time {t_factor:.2}s  ({gflops:.2} GFLOP/s on this host)");
    println!("  growth factor gT        = {:.1}", stats.growth_factor(1.0));
    println!("  thresholds tau_min/ave  = {:.2} / {:.2}", stats.tau_min(), stats.tau_ave());
    println!("  max |L|                 = {:.2}", stats.max_l);
    println!("  wb before refinement    = {wb0:.2e}");
    println!("  wb after {} refinements  = {wb1:.2e}", info.iterations);
    println!("  HPL1 = {:.2e}  HPL2 = {:.2e}  HPL3 = {:.2e}", rep.hpl1, rep.hpl2, rep.hpl3);
    println!("  ACCURACY GATE: {}", if rep.passes() { "PASSED" } else { "FAILED" });
    assert!(rep.passes());
}
