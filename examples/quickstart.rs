//! Quickstart: factor a random system with CALU (tournament pivoting),
//! solve it, and check the residual — the 30-second tour of the public API.
//!
//! Run: `cargo run --release --example quickstart`

use calu_repro::core::{calu_factor, CaluOpts, LocalLu};
use calu_repro::matrix::gen;
use calu_repro::stability::{backward_error_inf, hpl_tests};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 512;
    let mut rng = StdRng::seed_from_u64(2008);

    // A dense random system A x = b.
    let a = gen::randn(&mut rng, n, n);
    let x_true: Vec<f64> = (0..n).map(|i| ((i % 21) as f64) - 10.0).collect();
    let b = gen::rhs_for_solution(&a, &x_true);

    // CALU: panels of width 64, 8-way tournament, recursive local LU.
    let opts = CaluOpts {
        block: 64,
        p: 8,
        local: LocalLu::Recursive,
        parallel_update: true,
        ..Default::default()
    };
    let f = calu_factor(&a, opts).expect("random normal matrices are nonsingular");

    // Solve and validate.
    let x = f.solve(&b);
    let err = x.iter().zip(&x_true).map(|(a, b)| (a - b).abs()).fold(0.0_f64, f64::max);
    let bw = backward_error_inf(&a, &x, &b);
    let hpl = hpl_tests(&a, &x, &b);

    println!("CALU factorization of a {n}x{n} random normal matrix");
    println!("  block b = {}, tournament p = {}", opts.block, opts.p);
    println!("  max |x - x_true|        = {err:.3e}");
    println!("  normwise backward error = {bw:.3e}");
    println!(
        "  HPL residuals            = {:.3e} / {:.3e} / {:.3e}  (pass: {})",
        hpl.hpl1,
        hpl.hpl2,
        hpl.hpl3,
        hpl.passes()
    );

    // Refined solve (HPL-style, <= 2 steps).
    let (_x2, info) = f.solve_refined(&a, &b, 2);
    println!(
        "  after {} refinement step(s): scaled residual = {:.3e}",
        info.iterations, info.final_residual
    );
    assert!(hpl.passes());
}
