//! # calu-repro — Communication Avoiding Gaussian Elimination, reproduced in Rust
//!
//! A full reproduction of *Communication Avoiding Gaussian Elimination*
//! (Laura Grigori, James W. Demmel, Hua Xiang — INRIA RR-6523 / SC 2008):
//! **CALU**, an LU factorization for dense matrices in a 2D block-cyclic
//! layout whose panel factorization (**TSLU**) replaces per-column pivot
//! search with **tournament pivoting** ("ca-pivoting"), cutting panel
//! latency cost by a factor of the block size `b`.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`matrix`] — dense column-major substrate: BLAS-1/2/3 kernels and
//!   LAPACK-style routines written from scratch (factorizations, solves,
//!   inverse, condition estimation, equilibration, matrix ensembles).
//! * [`obs`] — the observability layer: structured tracing (typed spans
//!   from both executors, Chrome-trace/Perfetto export), a deterministic
//!   metrics registry (counters, gauges, log-bucketed histograms), and
//!   the communication ledger that reconciles measured traffic against
//!   the paper's skeleton predictions — all dependency-free.
//! * [`netsim`] — a discrete-event message-passing simulator with per-rank
//!   virtual clocks and an α-β-γ cost model (machine presets for the
//!   paper's IBM POWER5 and Cray XT4 systems plus a modern cluster),
//!   collectives, event tracing with Gantt rendering, and a deferred-
//!   compute overlap model for look-ahead studies.
//! * [`runtime`] — the dataflow task-graph runtime: the dependency DAG of
//!   blocked right-looking LU (`Panel`/`Swap`/`Trsm`/`Gemm` tasks at any
//!   lookahead depth) with a deterministic serial executor and a
//!   work-stealing threaded executor, feeding the netsim Gantt machinery.
//! * [`core`] — TSLU and CALU (sequential, rayon-parallel, lookahead-tiled
//!   multicore — both scheduled by [`runtime`] — and simulated-distributed),
//!   plus the GEPP / ScaLAPACK `PDGETRF`/`PDGETF2` baselines in real-data
//!   and cost-skeleton form.
//! * [`stability`] — the paper's numerical-stability laboratory: growth
//!   factors, pivot thresholds, HPL accuracy tests, five matrix ensembles.
//! * [`perfmodel`] — the paper's closed-form runtime models (Equations
//!   1-3), configuration sweeps, and technology-trend extrapolation.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-vs-measured record of every table and
//! figure.
//!
//! ## Quickstart
//!
//! ```
//! use calu_repro::core::{CaluOpts, calu_factor};
//! use calu_repro::matrix::gen;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let a = gen::randn(&mut rng, 256, 256);
//! let b: Vec<f64> = (0..256).map(|i| i as f64).collect();
//!
//! // Factor with tournament pivoting: block size 32, 4-way tournament.
//! let f = calu_factor(&a, CaluOpts { block: 32, p: 4, ..Default::default() }).unwrap();
//! let x = f.solve(&b);
//!
//! // Residual is small:
//! let r = calu_repro::stability::residuals::backward_error_inf(&a, &x, &b);
//! assert!(r < 1e-12);
//! ```

#![warn(missing_docs)]

pub use calu_core as core;
pub use calu_matrix as matrix;
pub use calu_netsim as netsim;
pub use calu_obs as obs;
pub use calu_perfmodel as perfmodel;
pub use calu_runtime as runtime;
pub use calu_stability as stability;
